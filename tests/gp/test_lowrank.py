"""Low-rank (Nyström/SoR) GP: exactness, convergence, and update laws.

The three Hypothesis properties are the subsystem's contract:

1. With every training point inducing (m = n), the low-rank posterior IS
   the exact GP posterior.
2. Predictions approach the exact GP's as the inducing budget grows.
3. ``update()`` is indistinguishable from refitting from scratch on the
   concatenated data.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gp import (GaussianProcessRegressor,
                      LowRankGaussianProcessRegressor, Matern52,
                      ConstantKernel, WhiteKernel, select_inducing)


def _data(seed: int, n: int, dim: int = 3):
    rng = np.random.default_rng(seed)
    X = rng.random((n, dim))
    y = np.sin(3.0 * X[:, 0]) + 0.5 * X[:, 1] ** 2 \
        + 0.1 * rng.standard_normal(n)
    return X, y


def _kernel():
    return ConstantKernel(1.0) * Matern52(0.7) + WhiteKernel(0.05)


class TestExactnessAtFullRank:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(5, 30))
    def test_m_equals_n_reproduces_exact_gp(self, seed, n):
        X, y = _data(seed, n)
        exact = GaussianProcessRegressor(_kernel(), optimize=False).fit(X, y)
        low = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=n, optimize=False).fit(X, y)
        Q = np.random.default_rng(seed + 1).random((40, X.shape[1]))
        mu_e, sd_e = exact.predict(Q, return_std=True)
        mu_l, sd_l = low.predict(Q, return_std=True)
        np.testing.assert_allclose(mu_l, mu_e, atol=1e-6, rtol=1e-6)
        np.testing.assert_allclose(sd_l, sd_e, atol=1e-5, rtol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_full_rank_nll_matches_exact(self, seed):
        X, y = _data(seed, 20)
        exact = GaussianProcessRegressor(_kernel(), optimize=False).fit(X, y)
        low = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=20, optimize=False).fit(X, y)
        theta = low.kernel.theta
        np.testing.assert_allclose(low.log_marginal_likelihood(theta),
                                   exact.log_marginal_likelihood(theta),
                                   atol=1e-6, rtol=1e-8)


class TestConvergenceInInducingBudget:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_error_vs_exact_shrinks_as_m_grows(self, seed):
        X, y = _data(seed, 60, dim=2)
        Q = np.random.default_rng(seed + 1).random((80, 2))
        mu_exact = GaussianProcessRegressor(
            _kernel(), optimize=False).fit(X, y).predict(Q)

        def rmse(m: int) -> float:
            gp = LowRankGaussianProcessRegressor(
                _kernel(), n_inducing=m, optimize=False).fit(X, y)
            return float(np.sqrt(np.mean((gp.predict(Q) - mu_exact) ** 2)))

        coarse, mid, full = rmse(5), rmse(30), rmse(60)
        # Monotone up to small numerical slack; exact at full rank.
        assert full <= 1e-6
        assert mid <= coarse + 1e-9
        assert full <= mid + 1e-9


class TestUpdateEqualsRefit:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1),
           n0=st.integers(5, 25), n1=st.integers(1, 10))
    def test_update_equals_fit_from_scratch(self, seed, n0, n1):
        X, y = _data(seed, n0 + n1)
        inc = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=12, optimize=False)
        inc.fit(X[:n0], y[:n0])
        inc.update(X, y)
        scratch = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=12, optimize=False).fit(X, y)
        Q = np.random.default_rng(seed + 1).random((30, X.shape[1]))
        mu_i, sd_i = inc.predict(Q, return_std=True)
        mu_s, sd_s = scratch.predict(Q, return_std=True)
        np.testing.assert_array_equal(mu_i, mu_s)
        np.testing.assert_array_equal(sd_i, sd_s)

    def test_update_preserves_optimize_flag(self):
        X, y = _data(0, 12)
        gp = LowRankGaussianProcessRegressor(_kernel(), n_inducing=6,
                                             optimize=True, n_restarts=0)
        gp.fit(X, y)
        gp.update(X, y)
        assert gp.optimize is True


class TestInducingSelection:
    def test_deterministic_and_unique(self):
        X, _ = _data(3, 40)
        k = _kernel()
        a = select_inducing(k, X, 10)
        b = select_inducing(k, X, 10)
        np.testing.assert_array_equal(a, b)
        assert len(set(a.tolist())) == len(a)

    def test_duplicate_rows_not_selected_twice(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.random((5, 2))] * 4)  # every point 4x
        idx = select_inducing(_kernel(), X, 12)
        # Conditional variance of an already-covered duplicate is ~0, so
        # selection stops at the 5 distinct rows.
        assert len(idx) == 5
        assert len({tuple(X[i]) for i in idx}) == len(idx)

    def test_budget_clamped_to_n(self):
        X, _ = _data(1, 8)
        assert len(select_inducing(_kernel(), X, 50)) <= 8


class TestApiParity:
    """The low-rank GP honours the exact GP's interface contract."""

    def test_fast_predict_matches_predict(self):
        X, y = _data(5, 30)
        gp = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=10, optimize=False).fit(X, y)
        Q = np.random.default_rng(6).random((20, 3))
        mu, sd = gp.predict(Q, return_std=True)
        mu_f, sd_f = gp.fast_predict(Q)
        np.testing.assert_allclose(mu_f, mu)
        np.testing.assert_allclose(sd_f, sd)

    def test_predict_with_gradient_matches_fd(self):
        X, y = _data(7, 30)
        gp = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=12, optimize=False).fit(X, y)
        x = np.array([0.4, 0.5, 0.6])
        mu, sd, dmu, dsd = gp.predict_with_gradient(x)
        eps = 1e-6
        for j in range(3):
            xp, xm = x.copy(), x.copy()
            xp[j] += eps
            xm[j] -= eps
            mp, sp = gp.predict(xp[None], return_std=True)
            mm, sm = gp.predict(xm[None], return_std=True)
            assert dmu[j] == pytest.approx((mp[0] - mm[0]) / (2 * eps),
                                           rel=1e-4, abs=1e-6)
            assert dsd[j] == pytest.approx((sp[0] - sm[0]) / (2 * eps),
                                           rel=1e-4, abs=1e-6)

    def test_train_views_and_inducing_indices(self):
        X, y = _data(8, 25)
        gp = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=9, optimize=False).fit(X, y)
        np.testing.assert_array_equal(gp.X_train_, X)
        assert gp.y_train_.shape == (25,)
        idx = gp.inducing_indices_
        assert len(idx) == 9
        assert set(idx.tolist()) <= set(range(25))

    def test_rejects_bad_shapes(self):
        gp = LowRankGaussianProcessRegressor(optimize=False)
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            LowRankGaussianProcessRegressor(n_inducing=0)

    def test_hyperopt_improves_likelihood(self):
        X, y = _data(9, 40, dim=2)
        base = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=12, optimize=False).fit(X, y)
        tuned = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=12, optimize=True, n_restarts=1,
            rng=0).fit(X, y)
        assert tuned.log_marginal_likelihood(tuned.kernel.theta) >= \
            base.log_marginal_likelihood(base.kernel.theta) - 1e-9

    def test_analytic_gradient_matches_numeric_nll_slope(self):
        X, y = _data(11, 30)
        gp = LowRankGaussianProcessRegressor(
            _kernel(), n_inducing=10, optimize=False,
            analytic_gradients=True).fit(X, y)
        theta = gp.kernel.theta.copy()
        nll, grad = gp._nll_and_grad(theta, gp.kernel)
        assert nll == pytest.approx(gp._nll(theta), rel=1e-10)
        eps = 1e-5
        for j in range(len(theta)):
            tp, tm = theta.copy(), theta.copy()
            tp[j] += eps
            tm[j] -= eps
            fd = (gp._nll(tp) - gp._nll(tm)) / (2 * eps)
            assert grad[j] == pytest.approx(fd, rel=1e-3, abs=1e-6)
