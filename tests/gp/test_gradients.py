"""Gradient checks: analytic kernel/NLL/posterior gradients vs central
differences.

Every analytic derivative shipped by the gradient tentpole is validated
against a numerical oracle to 1e-6: ∂K/∂θ for each kernel and for
sum/product compositions, the marginal-likelihood gradient (trace
identity), and the posterior input-gradients returned by
``predict_with_gradient`` — across random spaces and dimensions.
"""

import copy

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor
from repro.gp.gpr import default_bo_kernel
from repro.gp.kernels import (ConstantKernel, Kernel, Matern52, RBF, Sum,
                              WhiteKernel)

EPS = 1e-6
TOL = 1e-6


def central_difference_theta(kernel, X, eps=EPS):
    """Numerical ∂K/∂θ stack for any kernel."""
    theta0 = kernel.theta.copy()
    grads = []
    for i in range(len(theta0)):
        tp = theta0.copy()
        tp[i] += eps
        kernel.theta = tp
        Kp = kernel(X)
        tm = theta0.copy()
        tm[i] -= eps
        kernel.theta = tm
        Km = kernel(X)
        grads.append((Kp - Km) / (2.0 * eps))
    kernel.theta = theta0
    return np.stack(grads)


def central_difference_input(kernel, x, X, eps=EPS):
    """Numerical ∂k(x, X)/∂x Jacobian for any kernel."""
    num = np.zeros((X.shape[0], len(x)))
    for j in range(len(x)):
        xp = x.copy()
        xp[j] += eps
        xm = x.copy()
        xm[j] -= eps
        num[:, j] = (kernel(xp[None], X)[0] - kernel(xm[None], X)[0]) \
            / (2.0 * eps)
    return num


def kernel_zoo():
    return {
        "constant": ConstantKernel(2.5),
        "rbf": RBF(0.7),
        "matern52": Matern52(0.45),
        "white": WhiteKernel(0.03),
        "sum": Matern52(0.6) + WhiteKernel(0.05),
        "product": ConstantKernel(1.7) * RBF(0.5),
        "default_bo": default_bo_kernel(),
        "deep": (ConstantKernel(1.3) * Matern52(0.4)
                 + ConstantKernel(0.6) * RBF(0.9) + WhiteKernel(0.02)),
    }


class TestKernelThetaGradients:
    @pytest.mark.parametrize("name", sorted(kernel_zoo()))
    @pytest.mark.parametrize("dim", [1, 3, 6])
    def test_matches_central_differences(self, name, dim):
        kernel = kernel_zoo()[name]
        rng = np.random.default_rng(hash((name, dim)) % 2**32)
        X = rng.random((9, dim))
        analytic = kernel.theta_gradient(X)
        numeric = central_difference_theta(kernel, X)
        np.testing.assert_allclose(analytic, numeric, atol=TOL)

    @pytest.mark.parametrize("name", sorted(kernel_zoo()))
    def test_value_matches_call(self, name):
        kernel = kernel_zoo()[name]
        X = np.random.default_rng(0).random((8, 4))
        K, grads = kernel.value_and_theta_gradient(X)
        np.testing.assert_allclose(K, kernel(X), atol=1e-12)
        assert len(grads) == len(kernel.theta)

    def test_cached_d2_path_matches_direct(self):
        from repro.gp.kernels import _cdist_sq
        kernel = default_bo_kernel()
        X = np.random.default_rng(3).random((10, 5))
        d2 = _cdist_sq(X, X)
        K1, g1 = kernel.value_and_theta_gradient(X)
        K2, g2 = kernel.value_and_theta_gradient(X, d2=d2)
        np.testing.assert_allclose(K1, K2, atol=1e-12)
        for a, b in zip(g1, g2):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_returned_matrices_do_not_alias(self):
        # The contract allows callers to mutate K (diagonal jitter).
        kernel = default_bo_kernel()
        X = np.random.default_rng(4).random((6, 3))
        K, grads = kernel.value_and_theta_gradient(X)
        snapshot = [g.copy() for g in grads]
        K += 123.0
        for g, s in zip(grads, snapshot):
            np.testing.assert_array_equal(g, s)

    def test_base_class_raises(self):
        class Bare(Kernel):
            def __call__(self, X, Y=None):
                return np.zeros((len(X), len(X if Y is None else Y)))

            def diag(self, X):
                return np.zeros(len(X))

            @property
            def theta(self):
                return np.array([])

            @theta.setter
            def theta(self, value):
                pass

            @property
            def bounds(self):
                return np.empty((0, 2))

        with pytest.raises(NotImplementedError):
            Bare().value_and_theta_gradient(np.zeros((2, 1)))
        with pytest.raises(NotImplementedError):
            Bare().input_gradient(np.zeros(1), np.zeros((2, 1)))


class TestKernelInputGradients:
    @pytest.mark.parametrize("name", sorted(kernel_zoo()))
    @pytest.mark.parametrize("dim", [1, 4])
    def test_matches_central_differences(self, name, dim):
        kernel = kernel_zoo()[name]
        rng = np.random.default_rng(hash((name, dim, "in")) % 2**32)
        X = rng.random((11, dim))
        x = rng.random(dim)
        analytic = kernel.input_gradient(x, X)
        numeric = central_difference_input(kernel, x, X)
        assert analytic.shape == (11, dim)
        np.testing.assert_allclose(analytic, numeric, atol=TOL)

    def test_white_noise_contributes_zero(self):
        X = np.random.default_rng(1).random((5, 3))
        x = X[2].copy()  # even exactly on a training point
        np.testing.assert_array_equal(
            WhiteKernel(0.5).input_gradient(x, X), np.zeros((5, 3)))


def make_gp_data(n=30, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, dim))
    y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(n)
    return X, y


class TestNLLGradient:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_central_differences(self, seed):
        X, y = make_gp_data(seed=seed)
        gp = GaussianProcessRegressor(rng=seed, optimize=False).fit(X, y)
        kernel = copy.deepcopy(gp.kernel)
        theta = kernel.theta.copy()
        _, grad = gp._nll_and_grad(theta, kernel)
        for i in range(len(theta)):
            tp = theta.copy()
            tp[i] += EPS
            tm = theta.copy()
            tm[i] -= EPS
            num = (gp._nll(tp, copy.deepcopy(gp.kernel))
                   - gp._nll(tm, copy.deepcopy(gp.kernel))) / (2.0 * EPS)
            assert abs(grad[i] - num) < 1e-4 * max(1.0, abs(num))

    def test_value_matches_plain_nll(self):
        X, y = make_gp_data(seed=3)
        gp = GaussianProcessRegressor(rng=3, optimize=False).fit(X, y)
        kernel = copy.deepcopy(gp.kernel)
        theta = kernel.theta + 0.1
        nll, _ = gp._nll_and_grad(theta, kernel)
        assert nll == pytest.approx(gp._nll(theta, copy.deepcopy(gp.kernel)),
                                    abs=1e-9)

    def test_unfactorizable_theta_returns_sentinel(self):
        X, y = make_gp_data(seed=4)
        gp = GaussianProcessRegressor(rng=4, optimize=False).fit(X, y)
        kernel = copy.deepcopy(gp.kernel)
        # Huge signal variance + negligible noise: numerically singular.
        bad = np.array([80.0, 10.0, -40.0])
        nll, grad = gp._nll_and_grad(bad, kernel)
        assert nll == 1e25
        np.testing.assert_array_equal(grad, np.zeros(3))


class TestAnalyticFit:
    def test_reaches_finite_difference_likelihood(self):
        X, y = make_gp_data(n=40, seed=5)
        fd = GaussianProcessRegressor(rng=5).fit(X, y)
        ag = GaussianProcessRegressor(rng=5, analytic_gradients=True) \
            .fit(X, y)
        # The exact gradient should match or beat the FD optimum.
        assert -ag.log_marginal_likelihood() \
            <= -fd.log_marginal_likelihood() + 1e-3

    def test_default_fit_bitwise_unchanged(self):
        # analytic_gradients=False must reproduce the historical fit.
        X, y = make_gp_data(n=25, seed=6)
        a = GaussianProcessRegressor(rng=6).fit(X, y)
        b = GaussianProcessRegressor(rng=6, analytic_gradients=False) \
            .fit(X, y)
        np.testing.assert_array_equal(a.kernel.theta, b.kernel.theta)

    @pytest.mark.parametrize("analytic", [False, True])
    def test_multi_start_parity_across_worker_counts(self, analytic):
        X, y = make_gp_data(n=25, seed=7)
        thetas = []
        for n_jobs in (1, 2, 4):
            gp = GaussianProcessRegressor(rng=7, n_jobs=n_jobs,
                                          analytic_gradients=analytic,
                                          n_restarts=3).fit(X, y)
            thetas.append(gp.kernel.theta.copy())
        np.testing.assert_array_equal(thetas[0], thetas[1])
        np.testing.assert_array_equal(thetas[0], thetas[2])

    def test_gradientless_kernel_falls_back(self):
        class NoGrad(Matern52):
            def value_and_theta_gradient(self, X, d2=None):
                raise NotImplementedError

        X, y = make_gp_data(n=20, seed=8)
        gp = GaussianProcessRegressor(kernel=NoGrad(0.5),
                                      analytic_gradients=True, rng=8)
        gp.fit(X, y)  # silently uses finite differences
        assert gp._fitted


class TestPosteriorGradients:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("analytic", [False, True])
    def test_matches_central_differences(self, seed, analytic):
        X, y = make_gp_data(seed=10 + seed)
        gp = GaussianProcessRegressor(rng=seed,
                                      analytic_gradients=analytic).fit(X, y)
        rng = np.random.default_rng(seed)
        for _ in range(3):
            x = rng.random(X.shape[1])
            mu, sigma, dmu, dsigma = gp.predict_with_gradient(x)
            for j in range(len(x)):
                xp = x.copy()
                xp[j] += EPS
                xm = x.copy()
                xm[j] -= EPS
                mp, sp = gp.fast_predict(xp[None])
                mm, sm = gp.fast_predict(xm[None])
                assert abs((mp[0] - mm[0]) / (2 * EPS) - dmu[j]) < TOL * 10
                assert abs((sp[0] - sm[0]) / (2 * EPS) - dsigma[j]) < TOL * 10

    def test_value_parity_with_fast_predict(self):
        X, y = make_gp_data(seed=13)
        gp = GaussianProcessRegressor(rng=13).fit(X, y)
        x = np.random.default_rng(13).random(X.shape[1])
        mu, sigma, _, _ = gp.predict_with_gradient(x)
        m, s = gp.fast_predict(x[None])
        assert mu == m[0]
        assert sigma == s[0]

    def test_clipped_variance_zeroes_sigma_gradient(self):
        # Querying an exact training point of a jitter-free noiseless GP
        # drives the posterior variance onto the 1e-12 clip floor, where
        # sigma is constant — its reported gradient must be zero to match.
        rng = np.random.default_rng(14)
        X = rng.random((8, 3))
        y = X[:, 0] * 2.0
        gp = GaussianProcessRegressor(kernel=Matern52(1.0), alpha=0.0,
                                      optimize=False, rng=14).fit(X, y)
        _, sigma, _, dsigma = gp.predict_with_gradient(X[4])
        assert sigma == np.sqrt(1e-12) * gp._y_std
        np.testing.assert_array_equal(dsigma, np.zeros(3))

    def test_requires_fit(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(RuntimeError):
            gp.predict_with_gradient(np.zeros(2))
