"""Tests for GP covariance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gp import (ConstantKernel, Matern52, Product, RBF, Sum,
                      WhiteKernel)


def random_points(n=12, dim=3, seed=0):
    return np.random.default_rng(seed).random((n, dim))


ALL_KERNELS = [
    lambda: ConstantKernel(2.0),
    lambda: RBF(0.7),
    lambda: Matern52(0.5),
    lambda: WhiteKernel(0.1),
    lambda: ConstantKernel(1.5) * Matern52(0.5) + WhiteKernel(0.01),
]


class TestKernelAlgebra:
    @pytest.mark.parametrize("make", ALL_KERNELS)
    def test_symmetric_psd(self, make):
        X = random_points()
        K = make()(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        eig = np.linalg.eigvalsh(K + 1e-10 * np.eye(len(X)))
        assert eig.min() > -1e-8

    @pytest.mark.parametrize("make", ALL_KERNELS)
    def test_diag_matches_full(self, make):
        X = random_points()
        k = make()
        np.testing.assert_allclose(k.diag(X), np.diag(k(X)), atol=1e-12)

    def test_sum_and_product_compose(self):
        X = random_points()
        a, b = RBF(0.5), ConstantKernel(3.0)
        np.testing.assert_allclose((a + b)(X), a(X) + b(X))
        np.testing.assert_allclose((a * b)(X), a(X) * b(X))

    @pytest.mark.parametrize("make", ALL_KERNELS)
    def test_theta_roundtrip(self, make):
        k = make()
        theta = k.theta.copy()
        k.theta = theta + 0.3
        np.testing.assert_allclose(k.theta, theta + 0.3, atol=1e-12)
        assert k.bounds.shape == (len(theta), 2)


class TestMatern52:
    def test_unit_at_zero_distance(self):
        X = random_points(5)
        np.testing.assert_allclose(np.diag(Matern52(1.0)(X)), 1.0)

    def test_monotone_decreasing_in_distance(self):
        k = Matern52(1.0)
        x = np.zeros((1, 1))
        d = np.linspace(0, 5, 50)[:, None]
        vals = k(x, d)[0]
        assert np.all(np.diff(vals) <= 1e-12)

    def test_lengthscale_controls_reach(self):
        x = np.zeros((1, 1))
        y = np.array([[1.0]])
        assert Matern52(2.0)(x, y)[0, 0] > Matern52(0.2)(x, y)[0, 0]


class TestWhiteKernel:
    def test_only_on_training_diagonal(self):
        X = random_points(6)
        k = WhiteKernel(0.5)
        np.testing.assert_allclose(k(X), 0.5 * np.eye(6))
        np.testing.assert_allclose(k(X, X.copy()), 0.0)

    def test_latent_diag_zero(self):
        X = random_points(4)
        np.testing.assert_allclose(WhiteKernel(0.5).latent_diag(X), 0.0)

    def test_composite_latent_diag_excludes_noise(self):
        X = random_points(4)
        k = ConstantKernel(2.0) * Matern52(1.0) + WhiteKernel(0.7)
        np.testing.assert_allclose(k.latent_diag(X), 2.0)
        np.testing.assert_allclose(k.diag(X), 2.7)


class TestValidation:
    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            Matern52(-1.0)
        with pytest.raises(ValueError):
            RBF(0.0)
        with pytest.raises(ValueError):
            WhiteKernel(0.0)
        with pytest.raises(ValueError):
            ConstantKernel(-2.0)
