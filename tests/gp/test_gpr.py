"""Tests for Gaussian-process regression."""

import numpy as np
import pytest

from repro.gp import (ConstantKernel, GaussianProcessRegressor, Matern52,
                      WhiteKernel, default_bo_kernel)


def smooth_data(n=40, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = np.sin(4 * X[:, 0]) + 0.5 * X[:, 1] + rng.normal(0, noise, n)
    return X, y


class TestInterpolation:
    def test_noise_free_interpolates_training_points(self):
        X, y = smooth_data()
        kernel = ConstantKernel(1.0) * Matern52(0.5) \
            + WhiteKernel(1e-6, bounds=(1e-9, 1e-4))
        gp = GaussianProcessRegressor(kernel, rng=0).fit(X, y)
        np.testing.assert_allclose(gp.predict(X), y, atol=1e-2)

    def test_uncertainty_small_at_data_large_far_away(self):
        X, y = smooth_data()
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        _, s_at = gp.predict(X[:5], return_std=True)
        _, s_far = gp.predict(np.full((1, 2), 5.0), return_std=True)
        assert s_far[0] > s_at.max()

    def test_generalizes_on_smooth_function(self):
        X, y = smooth_data(n=60, seed=1)
        Xq, yq = smooth_data(n=30, seed=2)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        rmse = np.sqrt(np.mean((gp.predict(Xq) - yq) ** 2))
        assert rmse < 0.15


class TestNoise:
    def test_white_kernel_absorbs_noise(self):
        X, y = smooth_data(n=80, seed=3, noise=0.2)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        # Learned noise level should be meaningful (not collapsed to 0).
        noise = gp.kernel.k2.noise_level
        assert noise > 1e-4

    def test_predicts_latent_not_noisy(self):
        X, y = smooth_data(n=120, seed=4, noise=0.3)
        Xq, yq = smooth_data(n=50, seed=5, noise=0.0)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        rmse = np.sqrt(np.mean((gp.predict(Xq) - yq) ** 2))
        assert rmse < 0.3


class TestMarginalLikelihood:
    def test_optimization_improves_mll(self):
        X, y = smooth_data(n=50, seed=6)
        fixed = GaussianProcessRegressor(optimize=False, rng=0).fit(X, y)
        tuned = GaussianProcessRegressor(rng=0).fit(X, y)
        assert tuned.log_marginal_likelihood() >= \
            fixed.log_marginal_likelihood() - 1e-6

    def test_lml_evaluates_arbitrary_theta_without_side_effect(self):
        X, y = smooth_data(n=30)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        theta = gp.kernel.theta.copy()
        gp.log_marginal_likelihood(theta + 1.0)
        np.testing.assert_allclose(gp.kernel.theta, theta)


class TestValidationAndEdges:
    def test_rejects_bad_shapes(self):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((4, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_predict_wrong_width(self):
        X, y = smooth_data(n=10)
        gp = GaussianProcessRegressor(optimize=False, rng=0).fit(X, y)
        with pytest.raises(ValueError):
            gp.predict(np.zeros((2, 5)))

    def test_single_point_fit(self):
        gp = GaussianProcessRegressor(rng=0).fit(np.array([[0.5, 0.5]]),
                                                 np.array([3.0]))
        mu = gp.predict(np.array([[0.5, 0.5]]))
        assert np.isfinite(mu[0])

    def test_constant_targets(self):
        X = np.random.default_rng(7).random((10, 2))
        y = np.full(10, 42.0)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        np.testing.assert_allclose(gp.predict(X), 42.0, atol=1e-6)

    def test_duplicate_points_dont_crash(self):
        X = np.tile(np.array([[0.3, 0.3]]), (8, 1))
        y = np.random.default_rng(8).normal(0, 0.1, 8)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        assert np.isfinite(gp.predict(X)).all()

    def test_y_train_roundtrip(self):
        X, y = smooth_data(n=15)
        gp = GaussianProcessRegressor(rng=0).fit(X, y)
        np.testing.assert_allclose(gp.y_train_, y, atol=1e-10)

    def test_kernel_template_not_mutated(self):
        X, y = smooth_data(n=20)
        template = default_bo_kernel()
        theta_before = template.theta.copy()
        GaussianProcessRegressor(template, rng=0).fit(X, y)
        np.testing.assert_allclose(template.theta, theta_before)
