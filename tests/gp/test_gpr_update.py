"""Tests for the incremental (rank-k Cholesky) GP update path."""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor, Matern52, WhiteKernel
from repro.gp.gpr import default_bo_kernel


def make_data(n, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + rng.normal(0, 0.01, n)
    return X, y


def fitted_gp(n=30, seed=0, optimize=False):
    X, y = make_data(n, seed=seed)
    gp = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                  optimize=optimize, rng=seed)
    gp.fit(X, y)
    return gp, X, y


class TestRank1Parity:
    @pytest.mark.parametrize("k", [1, 3])
    def test_extended_factor_matches_full_refit(self, k):
        gp, X, y = fitted_gp(n=40)
        Xa, ya = make_data(40 + k, seed=0)
        gp.update(Xa, ya)

        ref = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                       optimize=False)
        ref.fit(Xa, ya)

        Xq = np.random.default_rng(9).random((25, 3))
        mu_u, sd_u = gp.predict(Xq, return_std=True)
        mu_f, sd_f = ref.predict(Xq, return_std=True)
        np.testing.assert_allclose(mu_u, mu_f, atol=1e-8)
        np.testing.assert_allclose(sd_u, sd_f, atol=1e-8)
        # cho_factor leaves garbage above the diagonal; compare the
        # reconstructed covariance from the lower triangles only.
        L_u, L_f = np.tril(gp._chol[0]), np.tril(ref._chol[0])
        np.testing.assert_allclose(L_u @ L_u.T, L_f @ L_f.T, atol=1e-8)

    def test_repeated_updates_stay_close(self):
        gp, X, y = fitted_gp(n=20)
        Xa, ya = make_data(45, seed=0)
        for n in range(21, 46):
            gp.update(Xa[:n], ya[:n])
        ref = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                       optimize=False).fit(Xa, ya)
        Xq = np.random.default_rng(4).random((20, 3))
        np.testing.assert_allclose(gp.predict(Xq), ref.predict(Xq), atol=1e-8)


class TestFallbacks:
    def test_unfitted_update_behaves_like_fit(self):
        X, y = make_data(15)
        gp = GaussianProcessRegressor(kernel=default_bo_kernel(),
                                      optimize=False)
        gp.update(X, y)
        assert gp._fitted
        np.testing.assert_array_equal(gp.X_train_, X)

    def test_theta_change_forces_full_refit(self):
        gp, X, y = fitted_gp(n=25)
        gp.kernel.theta = gp.kernel.theta + 0.3
        Xa, ya = make_data(27, seed=0)
        gp.update(Xa, ya)
        ref = GaussianProcessRegressor(kernel=Matern52(1.0) + WhiteKernel(1e-2),
                                       alpha=1e-8, optimize=False)
        ref.kernel.theta = gp.kernel.theta
        # Same kernel state must reproduce the same posterior.
        Xq = np.random.default_rng(2).random((10, 3))
        mu = gp.predict(Xq)
        assert np.all(np.isfinite(mu))
        assert gp._X.shape[0] == 27

    def test_changed_prefix_rows_force_full_refit(self):
        gp, X, y = fitted_gp(n=20)
        Xa = X.copy()
        Xa[0, 0] += 0.1
        gp.update(Xa, y)
        np.testing.assert_array_equal(gp.X_train_, Xa)
        ref = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                       optimize=False).fit(Xa, y)
        Xq = np.random.default_rng(1).random((10, 3))
        np.testing.assert_array_equal(gp.predict(Xq), ref.predict(Xq))

    def test_shrunk_rows_force_full_refit(self):
        gp, X, y = fitted_gp(n=20)
        gp.update(X[:10], y[:10])
        assert gp.X_train_.shape[0] == 10

    def test_same_rows_new_targets_recomputes_weights(self):
        gp, X, y = fitted_gp(n=20)
        y2 = y + 1.0
        gp.update(X, y2)
        ref = GaussianProcessRegressor(kernel=default_bo_kernel(), alpha=1e-8,
                                       optimize=False).fit(X, y2)
        Xq = np.random.default_rng(3).random((10, 3))
        np.testing.assert_allclose(gp.predict(Xq), ref.predict(Xq),
                                   atol=1e-10)

    def test_noop_update_is_noop(self):
        gp, X, y = fitted_gp(n=20)
        w = gp._weights.copy()
        gp.update(X, y)
        np.testing.assert_array_equal(gp._weights, w)

    def test_update_never_reoptimizes_theta(self):
        gp, X, y = fitted_gp(n=25, optimize=True)
        theta = gp.kernel.theta.copy()
        Xa, ya = make_data(28, seed=0)
        gp.update(Xa, ya)
        np.testing.assert_array_equal(gp.kernel.theta, theta)
        assert gp.optimize  # caller's setting restored


class TestFastPredict:
    def test_bitwise_equal_to_predict(self):
        gp, X, y = fitted_gp(n=30, optimize=True)
        Xq = np.random.default_rng(11).random((50, 3))
        mu, sd = gp.predict(Xq, return_std=True)
        mu_f, sd_f = gp.fast_predict(Xq)
        np.testing.assert_array_equal(mu, mu_f)
        np.testing.assert_array_equal(sd, sd_f)


class TestGramCache:
    def test_cached_kernel_matches_direct_evaluation(self):
        gp, X, y = fitted_gp(n=25, optimize=True)
        K_cached = gp._K_train()
        K_direct = gp.kernel(gp._X)
        np.testing.assert_allclose(K_cached, K_direct, rtol=1e-12, atol=1e-12)

    def test_optimized_fit_unchanged_by_cache(self):
        # The cached-Gram likelihood path must land on the same
        # hyperparameters as direct kernel evaluation (Matérn is bit-exact).
        X, y = make_data(30, seed=5)
        gp = GaussianProcessRegressor(kernel=default_bo_kernel(), rng=5)
        gp.fit(X, y)

        class NoCache(GaussianProcessRegressor):
            def _K_train(self, kernel=None):
                kernel = self.kernel if kernel is None else kernel
                return kernel(self._X)

        ref = NoCache(kernel=default_bo_kernel(), rng=5)
        ref.fit(X, y)
        np.testing.assert_array_equal(gp.kernel.theta, ref.kernel.theta)
