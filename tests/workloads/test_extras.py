"""Tests for the extra (beyond-Table-1) workloads."""

import pytest

from repro.sparksim import SparkSimulator
from repro.workloads import Dataset, get_workload
from repro.workloads.extras import (EXTRA_WORKLOADS, SupportVectorMachine,
                                    TriangleCount, WordCount)
from repro.workloads.registry import WORKLOADS

SANE = {
    "spark.executor.cores": 8,
    "spark.executor.memory": 24 * 1024,
    "spark.executor.instances": 15,
    "spark.default.parallelism": 240,
}


class TestRegistryIntegration:
    def test_extras_not_in_paper_set(self):
        assert not set(EXTRA_WORKLOADS) & set(WORKLOADS)

    def test_lookup_by_name_and_abbrev(self):
        assert isinstance(get_workload("wordcount", "D1"), WordCount)
        assert isinstance(get_workload("WC", "D2"), WordCount)
        assert isinstance(get_workload("svm", "D1"), SupportVectorMachine)
        assert isinstance(get_workload("TC", "D3"), TriangleCount)

    def test_numeric_scale_shortcut(self):
        wl = get_workload("wordcount", 5.0)
        assert wl.input_mb == 5.0 * 1024

    def test_bad_label_for_extra(self):
        with pytest.raises(KeyError):
            get_workload("wordcount", "D9")


class TestBehaviour:
    @pytest.mark.parametrize("name", list(EXTRA_WORKLOADS))
    def test_runs_successfully_when_tuned(self, name):
        sim = SparkSimulator()
        wl = get_workload(name, "D1")
        res = sim.run(wl.build_stages(), SANE, rng=0)
        assert res.ok, f"{name}: {res.failure_reason}"

    def test_trianglecount_is_shuffle_heavy(self):
        stages = get_workload("trianglecount", "D1").build_stages()
        assert max(s.shuffle_write_ratio for s in stages) > 1.0

    def test_svm_iterates_over_cache(self):
        stages = get_workload("svm", "D1").build_stages()
        epochs = [s for s in stages if s.name.startswith("sgd-epoch")]
        assert len(epochs) == SupportVectorMachine.iterations
        assert all(s.reads_cached == "svm-examples" for s in epochs)

    def test_wordcount_two_stages(self):
        stages = get_workload("wordcount", "D1").build_stages()
        assert len(stages) == 2
        assert stages[1].output_mb > 0
