"""Tests for the five workload stage-DAG models."""

import numpy as np
import pytest

from repro.sparksim import (CacheLevel, InputSource, RunStatus,
                            SparkSimulator, SparkConf)
from repro.workloads import (ConnectedComponents, Dataset, KMeans,
                             LogisticRegression, PageRank, TeraSort,
                             get_workload, iter_table1)

SANE = {
    "spark.executor.cores": 8,
    "spark.executor.memory": 24 * 1024,
    "spark.executor.instances": 15,
    "spark.default.parallelism": 240,
}


class TestDAGShapes:
    def test_pagerank_structure(self):
        stages = get_workload("pagerank", "D1").build_stages()
        names = [s.name for s in stages]
        assert names[0] == "parse-and-cache-graph"
        assert stages[0].cache_output is not None
        assert sum("contributions" in n for n in names) == 3
        assert sum("aggregate-ranks" in n for n in names) == 3
        # Iterations alternate cache-read map and shuffle-read reduce.
        assert stages[1].input_source == InputSource.CACHE
        assert stages[2].input_source == InputSource.SHUFFLE
        assert stages[2].shuffle_agg

    def test_kmeans_structure(self):
        stages = get_workload("kmeans", "D1").build_stages()
        assert stages[0].cache_output.level == CacheLevel.MEMORY
        iters = [s for s in stages if s.name.startswith("assign")]
        assert len(iters) == 10
        for s in iters:
            assert s.reads_cached == "km-points"
            assert s.broadcast_mb > 0
            assert s.driver_collect_mb > 0

    def test_connectedcomponents_serialized_cache(self):
        stages = get_workload("cc", "D1").build_stages()
        assert stages[0].cache_output.level == CacheLevel.MEMORY_SER

    def test_cc_frontier_shrinks(self):
        stages = get_workload("connectedcomponents", "D1").build_stages()
        props = [s for s in stages if s.name.startswith("propagate")]
        ratios = [s.shuffle_write_ratio for s in props]
        assert all(b < a for a, b in zip(ratios, ratios[1:]))

    def test_terasort_structure(self):
        stages = get_workload("terasort", "D1").build_stages()
        assert [s.name for s in stages] == ["sample-ranges",
                                            "map-and-shuffle",
                                            "sort-and-write"]
        assert stages[1].shuffle_write_ratio == 1.0
        assert stages[2].output_mb == stages[2].input_mb
        assert all(s.cache_output is None for s in stages)

    def test_logistic_regression_structure(self):
        stages = get_workload("lr", "D1").build_stages()
        assert stages[0].cache_output is not None
        assert sum(s.name.startswith("gradient") for s in stages) == 5


class TestScaling:
    @pytest.mark.parametrize("name", ["pagerank", "kmeans", "terasort",
                                      "logisticregression",
                                      "connectedcomponents"])
    def test_input_scales_with_dataset(self, name):
        d1 = get_workload(name, "D1")
        d3 = get_workload(name, "D3")
        assert d3.input_mb > d1.input_mb

    def test_custom_dataset(self):
        wl = get_workload("terasort", Dataset("tiny", 1.0))
        assert wl.input_mb == 1024.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", -5.0)


class TestRegistry:
    def test_all_table1_cells_instantiable(self):
        cells = list(iter_table1())
        assert len(cells) == 15
        for name, label in cells:
            wl = get_workload(name, label)
            assert wl.build_stages()

    def test_abbreviation_lookup(self):
        assert isinstance(get_workload("PR"), PageRank)
        assert isinstance(get_workload("km"), KMeans)
        assert isinstance(get_workload("TS"), TeraSort)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("quantum-sort")

    def test_unknown_dataset_label(self):
        with pytest.raises(KeyError):
            get_workload("pagerank", "D9")

    def test_keys(self):
        wl = get_workload("pagerank", "D2")
        assert wl.key == "pagerank"
        assert wl.full_key == "pagerank/D2"


class TestPaperBehaviour:
    """The §5.2 failure/slowness narrative under the default config."""

    @pytest.fixture(scope="class")
    def sim(self):
        return SparkSimulator()

    @pytest.mark.parametrize("name", ["pagerank", "connectedcomponents"])
    def test_graph_workloads_oom_on_defaults(self, sim, name):
        res = sim.run(get_workload(name, "D1").build_stages(), SparkConf(),
                      rng=0)
        assert res.status is RunStatus.OOM

    def test_terasort_d1_survives_defaults(self, sim):
        res = sim.run(get_workload("terasort", "D1").build_stages(),
                      SparkConf(), rng=0)
        assert res.ok

    @pytest.mark.parametrize("label", ["D2", "D3"])
    def test_terasort_larger_fail_on_defaults(self, sim, label):
        res = sim.run(get_workload("terasort", label).build_stages(),
                      SparkConf(), rng=0)
        assert not res.ok

    @pytest.mark.parametrize("name", ["kmeans", "logisticregression"])
    def test_ml_workloads_succeed_but_slowly_on_defaults(self, sim, name):
        stages = get_workload(name, "D1").build_stages()
        default = sim.run(stages, SparkConf(), rng=0)
        tuned = sim.run(stages, SANE, rng=0)
        assert default.ok and tuned.ok
        assert default.duration_s > 2.0 * tuned.duration_s

    def test_all_workloads_tunable_to_success(self, sim):
        for name, label in iter_table1():
            res = sim.run(get_workload(name, label).build_stages(), SANE,
                          rng=1)
            assert res.ok, f"{name}/{label}: {res.failure_reason}"
