"""Hypothesis properties over the durable session store.

Random interleavings of submit/claim/complete/fail/cancel across TWO
handles onto the same store directory (a client and a daemon, or two
daemons) must uphold the store's three core invariants:

* **Never lose a session**: every submitted sid stays visible with a
  legal lifecycle state.
* **Never double-claim**: at most one live claim per session; a second
  handle claiming while the first's lock is live gets nothing.
* **Index round-trips from disk**: after any operation sequence,
  rebuilding the index from the per-session files reproduces the cached
  index exactly (state.json is the truth, index.json only a cache).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import SessionSpec, SessionStore
from repro.serve.session import TERMINAL_STATES, TRANSITIONS

# Each op: (kind, handle_index, value)
ops = st.lists(
    st.tuples(st.sampled_from(["submit", "claim", "complete", "fail",
                               "cancel", "release", "repair"]),
              st.integers(0, 1), st.integers(0, 9)),
    min_size=1, max_size=30)


def _apply(stores, claims, op):
    kind, h, value = op
    store = stores[h]
    if kind == "submit":
        store.submit(SessionSpec(workload="pagerank", seed=value,
                                 priority=value % 3))
    elif kind == "claim":
        claim = store.claim(f"h{h}")
        if claim is not None:
            claims[h].append(claim)
    elif kind in ("complete", "fail", "release") and claims[h]:
        claim = claims[h].pop(value % len(claims[h]))
        if kind == "complete":
            store.complete(claim, {"v": value})
        elif kind == "fail":
            store.fail(claim, f"err{value}")
        else:
            store.release(claim)
    elif kind == "cancel":
        sessions = store.list_sessions()
        if sessions:
            store.cancel(sessions[value % len(sessions)]["sid"])
    elif kind == "repair":
        store.repair_index()


@given(ops)
@settings(max_examples=60, deadline=None)
def test_interleavings_uphold_store_invariants(tmp_path_factory, operations):
    root = tmp_path_factory.mktemp("serve-prop") / "store"
    stores = [SessionStore(root, fsync=False), SessionStore(root, fsync=False)]
    claims: list[list] = [[], []]
    submitted = 0
    for op in operations:
        if op[0] == "submit":
            submitted += 1
        _apply(stores, claims, op)

        # Invariant: no session lost, every state legal.
        sessions = stores[0].list_sessions()
        assert len(sessions) == submitted
        for entry in sessions:
            assert entry["state"] in TRANSITIONS
            assert stores[0].state(entry["sid"]) == entry["state"]

        # Invariant: at most one live claim per sid across both handles.
        live = [c.sid for handle in claims for c in handle]
        assert len(live) == len(set(live))
        for handle in claims:
            for claim in handle:
                assert stores[0].lock_holder(claim.sid) is not None

    # Invariant: the cache equals a from-disk rebuild, from either handle.
    assert stores[0].rebuild_index() == stores[0].load_index()
    assert stores[1].rebuild_index() == stores[1].load_index()


@given(ops)
@settings(max_examples=40, deadline=None)
def test_index_cache_loss_never_loses_sessions(tmp_path_factory, operations):
    root = tmp_path_factory.mktemp("serve-prop") / "store"
    stores = [SessionStore(root, fsync=False), SessionStore(root, fsync=False)]
    claims: list[list] = [[], []]
    for op in operations:
        _apply(stores, claims, op)
    before = {s["sid"]: s for s in stores[0].list_sessions()}
    index_path = root / "index.json"
    if index_path.exists():
        index_path.unlink()  # lose the cache entirely
    stores[1].repair_index()
    after = {s["sid"]: s for s in stores[0].list_sessions()}
    assert after == before


@given(st.lists(st.integers(0, 5), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_terminal_states_are_absorbing(tmp_path_factory, seeds):
    root = tmp_path_factory.mktemp("serve-prop") / "store"
    store = SessionStore(root, fsync=False)
    sids = [store.submit(SessionSpec(workload="pagerank", seed=s))
            for s in seeds]
    while (claim := store.claim()) is not None:
        store.complete(claim, {})
    for sid in sids:
        state = store.state(sid)
        assert state in TERMINAL_STATES
        assert store.cancel(sid) == state  # cancel cannot resurrect
        assert store.state(sid) == state
