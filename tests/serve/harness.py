"""Black-box harness: a real ``repro serve`` daemon subprocess.

The harness treats the service exactly like an operator would — it
spawns ``python -m repro serve --store DIR`` as a subprocess, talks to
it only through the public transports, and can SIGKILL it mid-session
to exercise crash recovery.  Nothing here imports daemon internals.

Set ``REPRO_SERVE_ARTIFACTS=/some/dir`` (the CI serve-smoke job does)
and :func:`export_artifacts` copies per-session trace summaries there
for post-mortem inspection.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.obs import load_trace, render_summary, summarize
from repro.serve import ServiceClient, SessionStore

__all__ = ["DaemonHarness", "export_artifacts", "fast_spec_kwargs"]

#: Spec knobs that keep one smoke session to a few seconds of wall clock
#: without losing any phase (selection + BO both run).
FAST_SPEC = {"budget": 6, "init_samples": 4, "selection_samples": 10,
             "selection_repeats": 2}


def fast_spec_kwargs(**overrides):
    """FAST_SPEC with per-test overrides folded in."""
    kwargs = dict(FAST_SPEC)
    kwargs.update(overrides)
    return kwargs


class DaemonHarness:
    """Run one service daemon subprocess against a store directory."""

    def __init__(self, store_root: Path, *, workers: int = 1,
                 drain: bool = False, socket: str | None = None,
                 extra_args: tuple[str, ...] = ()) -> None:
        self.store_root = Path(store_root)
        self.store = SessionStore(self.store_root)
        self.workers = workers
        self.drain = drain
        self.socket = socket
        self.extra_args = tuple(extra_args)
        self.proc: subprocess.Popen | None = None

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "DaemonHarness":
        argv = [sys.executable, "-m", "repro", "serve",
                "--store", str(self.store_root),
                "--workers", str(self.workers)]
        if self.drain:
            argv.append("--drain")
        if self.socket:
            argv += ["--socket", self.socket]
        argv += list(self.extra_args)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(argv, env=env,
                                     stdout=subprocess.PIPE,
                                     stderr=subprocess.PIPE)
        self._await_registration()
        return self

    def _await_registration(self, attempts: int = 400,
                            poll_s: float = 0.05) -> None:
        """Wait for the daemon to write its registration (it is serving)."""
        assert self.proc is not None
        for _ in range(attempts):
            info = self.store.daemon_info()
            if info is not None and info.get("pid") == self.proc.pid:
                return
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "daemon exited before registering:\n"
                    + self.proc.stderr.read().decode(errors="replace"))
            time.sleep(poll_s)
        raise RuntimeError("daemon never registered in the store")

    def wait(self, timeout_s: float = 600.0) -> int:
        """Wait for the daemon process to exit (drain mode)."""
        assert self.proc is not None
        return self.proc.wait(timeout=timeout_s)

    def stop(self, timeout_s: float = 60.0) -> int:
        """Graceful SIGTERM shutdown; SIGKILL only if it hangs."""
        assert self.proc is not None
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30.0)
        self._drain_pipes()
        return self.proc.returncode

    def kill(self) -> None:
        """SIGKILL — the crash-recovery tests' hammer."""
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=30.0)
        self._drain_pipes()

    def _drain_pipes(self) -> None:
        assert self.proc is not None
        for pipe in (self.proc.stdout, self.proc.stderr):
            if pipe is not None:
                pipe.read()
                pipe.close()

    def __enter__(self) -> "DaemonHarness":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- clients ------------------------------------------------------------------
    def client(self) -> ServiceClient:
        return ServiceClient.for_store(self.store_root)

    def socket_client(self, timeout_s: float = 30.0) -> ServiceClient:
        return ServiceClient.for_socket("auto", store_root=self.store_root,
                                        timeout_s=timeout_s)

    # -- crash choreography -------------------------------------------------------
    def kill_when_journal_reaches(self, sid: str, n_lines: int, *,
                                  attempts: int = 2400,
                                  poll_s: float = 0.05) -> int:
        """SIGKILL the daemon once *sid*'s journal holds >= n_lines lines.

        Polling the journal (not a clock) makes the kill land at a
        deterministic *progress point* regardless of machine speed.
        Returns the line count observed at the kill.
        """
        path = self.store.journal_path(sid)
        for _ in range(attempts):
            if path.exists():
                lines = path.read_text().count("\n")
                if lines >= n_lines:
                    self.kill()
                    return lines
            if self.proc is not None and self.proc.poll() is not None:
                raise RuntimeError("daemon exited before the kill point")
            time.sleep(poll_s)
        raise RuntimeError(
            f"journal for {sid} never reached {n_lines} lines")


def export_artifacts(store: SessionStore,
                     dest: str | None = None) -> list[Path]:
    """Render per-session trace summaries into *dest* (or $REPRO_SERVE_ARTIFACTS).

    No-op (returns []) when neither is set, so tests call it
    unconditionally and only CI pays the cost.
    """
    dest = dest or os.environ.get("REPRO_SERVE_ARTIFACTS")
    if not dest:
        return []
    out_dir = Path(dest)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for entry in store.list_sessions():
        sid = entry["sid"]
        for trace in store.trace_paths(sid):
            try:
                text = render_summary(summarize(load_trace(trace)))
            except (ValueError, KeyError) as exc:
                text = f"unrenderable trace {trace.name}: {exc}"
            out = out_dir / f"{sid}-{trace.stem}.txt"
            out.write_text(f"session {sid} [{entry['state']}]\n{text}\n")
            written.append(out)
    return written
