"""Transport tests: address parsing, request dispatch, both transports."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import (FileTransport, SessionSpec, SessionStore,
                         SocketTransport, TuningDaemon, handle_request,
                         parse_address)

SPEC = SessionSpec(workload="pagerank", budget=6, seed=0, init_samples=4,
                   selection_samples=10, selection_repeats=2)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7341") == ("tcp",
                                                   ("127.0.0.1", 7341))

    def test_bare_port_defaults_host(self):
        assert parse_address(":7341") == ("tcp", ("127.0.0.1", 7341))

    def test_paths_are_unix_sockets(self):
        assert parse_address("/tmp/serve.sock") == ("unix",
                                                    "/tmp/serve.sock")
        # A colon inside a path with a non-numeric tail is still a path.
        assert parse_address("/tmp/a:b.sock") == ("unix", "/tmp/a:b.sock")


class TestHandleRequest:
    def test_submit_status_cancel_round_trip(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        response = handle_request(store, {"op": "submit",
                                          "spec": SPEC.to_dict()})
        assert response["ok"]
        sid = response["sid"]
        view = handle_request(store, {"op": "status", "sid": sid})["view"]
        assert view["state"] == "PENDING"
        assert handle_request(store, {"op": "cancel",
                                      "sid": sid})["state"] == "CANCELLED"
        sessions = handle_request(store, {"op": "list"})["sessions"]
        assert [s["sid"] for s in sessions] == [sid]

    def test_results_before_settle_is_null(self, tmp_path):
        store = SessionStore(tmp_path / "store")
        sid = store.submit(SPEC)
        assert handle_request(store, {"op": "results",
                                      "sid": sid})["result"] is None

    @pytest.mark.parametrize("request_", [
        {"op": "bogus"},
        {"op": "status", "sid": "s999999-ffffffff"},
        {"op": "submit", "spec": {"workload": ""}},
        {"op": "submit", "spec": {"workload": "pagerank", "nope": 1}},
        {},
    ])
    def test_bad_requests_are_errors_not_exceptions(self, tmp_path,
                                                    request_):
        store = SessionStore(tmp_path / "store")
        response = handle_request(store, request_)
        assert response["ok"] is False
        assert response["error"]


class TestFileTransport:
    def test_full_verb_surface(self, tmp_path):
        transport = FileTransport(tmp_path / "store")
        assert transport.ping() is False  # no daemon registered
        sid = transport.submit(SPEC)
        assert transport.status(sid)["state"] == "PENDING"
        assert transport.results(sid) is None
        assert transport.cancel(sid) == "CANCELLED"
        assert len(transport.list_sessions()) == 1

    def test_ping_requires_a_live_pid(self, tmp_path):
        transport = FileTransport(tmp_path / "store")
        transport.store.write_daemon_info({"pid": 2 ** 22 + 1})
        assert transport.ping() is False


class TestSocketTransport:
    @pytest.fixture()
    def live_daemon(self, tmp_path):
        """An idle in-process daemon with its RPC server up."""
        store = SessionStore(tmp_path / "store")
        daemon = TuningDaemon(store, workers=1, poll_s=0.02,
                              socket_address="auto", session_traces=False)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        for _ in range(400):
            info = store.daemon_info()
            if info is not None and info.get("address"):
                break
            time.sleep(0.02)
        yield store, daemon
        daemon.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_verbs_over_the_wire(self, live_daemon):
        store, daemon = live_daemon
        transport = SocketTransport("auto", store_root=store.root)
        assert transport.ping()
        sid = transport.submit(SPEC)
        view = transport.status(sid)
        assert view["sid"] == sid
        assert [s["sid"] for s in transport.list_sessions()] == [sid]
        # Unknown sid surfaces as a RuntimeError carrying the server error.
        with pytest.raises(RuntimeError, match="KeyError"):
            transport.status("s999999-ffffffff")

    def test_shutdown_stops_the_daemon(self, live_daemon):
        store, daemon = live_daemon
        transport = SocketTransport("auto", store_root=store.root)
        assert transport.shutdown()
        for _ in range(400):
            if daemon._stop.is_set():
                break
            time.sleep(0.02)
        assert daemon._stop.is_set()

    def test_auto_without_registration_fails_loudly(self, tmp_path):
        with pytest.raises(ConnectionError, match="no daemon"):
            SocketTransport("auto", store_root=tmp_path / "empty")

    def test_auto_needs_store_root(self):
        with pytest.raises(ValueError, match="store_root"):
            SocketTransport("auto")
