"""Black-box acceptance: a real daemon serves sessions bit-identically.

Three sessions (different workloads/seeds/priorities) go through a
``repro serve`` subprocess; every result digest must equal an in-process
:func:`repro.serve.run_session` of the same spec.  That is the service's
core contract — journaling, scheduling, claiming and the transports may
add machinery but never decisions (docs/SERVING.md).
"""

from __future__ import annotations

import pytest

from repro.obs import load_trace
from repro.serve import SessionSpec, result_payload, run_session

from .harness import DaemonHarness, export_artifacts, fast_spec_kwargs

SPECS = [
    SessionSpec(workload="pagerank", dataset="D1", seed=11, priority=1,
                **fast_spec_kwargs()),
    SessionSpec(workload="kmeans", dataset="D2", seed=23,
                **fast_spec_kwargs()),
    SessionSpec(workload="terasort", dataset="D1", seed=5, metric=
                "core_seconds", **fast_spec_kwargs()),
]


def test_three_sessions_bit_identical_to_in_process(tmp_path):
    with DaemonHarness(tmp_path / "store", workers=2) as daemon:
        client = daemon.client()
        sids = [client.submit(spec) for spec in SPECS]
        views = client.wait_all(sids, timeout_s=570)
        export_artifacts(daemon.store)

    for sid, spec in zip(sids, SPECS):
        view = views[sid]
        assert view["state"] == "DONE", view.get("error")
        served = view["result"]
        local = result_payload(spec, run_session(spec))
        assert served["digest"] == local["digest"], (
            f"served digest diverged from in-process for {spec.workload}")
        assert served["n_stream"] == local["n_stream"]
        assert served["best_objective"] == pytest.approx(
            local["best_objective"])
        assert served["selected_parameters"] == local["selected_parameters"]


def test_daemon_writes_session_traces_and_registration(tmp_path):
    spec = SessionSpec(workload="pagerank", seed=3, **fast_spec_kwargs())
    with DaemonHarness(tmp_path / "store", workers=1) as daemon:
        info = daemon.store.daemon_info()
        assert info["pid"] == daemon.proc.pid
        client = daemon.client()
        assert client.ping()  # registered pid is alive
        sid = client.submit(spec)
        view = client.wait(sid, timeout_s=570)
        assert view["state"] == "DONE"
        traces = daemon.store.trace_paths(sid)
        assert len(traces) == 1  # one attempt, one trace file
        assert traces[0].stat().st_size > 0
    assert not daemon.client().ping()  # daemon gone after shutdown


def test_priority_orders_single_worker_execution(tmp_path):
    # Submit both sessions BEFORE any daemon exists, then drain with one
    # worker: the later, higher-priority submission must be claimed
    # first (the daemon trace records the claim order).
    low = SessionSpec(workload="pagerank", seed=1, priority=0,
                      **fast_spec_kwargs())
    high = SessionSpec(workload="pagerank", seed=2, priority=5,
                       **fast_spec_kwargs())
    daemon = DaemonHarness(tmp_path / "store", workers=1, drain=True,
                           extra_args=("--trace",
                                       str(tmp_path / "daemon.jsonl")))
    client = daemon.client()
    sid_low = client.submit(low)
    sid_high = client.submit(high)
    daemon.start()
    assert daemon.wait(timeout_s=570) == 0
    daemon.stop()

    assert daemon.store.state(sid_low) == "DONE"
    assert daemon.store.state(sid_high) == "DONE"
    claims = [r["data"]["sid"] for r in load_trace(tmp_path / "daemon.jsonl")
              if r.get("type") == "serve.claim"]
    assert claims == [sid_high, sid_low]
