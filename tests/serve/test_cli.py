"""CLI service verbs: serve/submit/status/results/cancel round trips."""

from __future__ import annotations

import json

from repro.cli import main

FAST = ["--budget", "6", "--init-samples", "4", "--selection-samples", "10",
        "--selection-repeats", "2"]


def _submit(store, *extra):
    return ["submit", "--workload", "pagerank", "--seed", "3",
            "--store", str(store), *FAST, *extra]


class TestServeCli:
    def test_submit_serve_status_results_cancel(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(_submit(store, "--tag", "owner=ci")) == 0
        sid = capsys.readouterr().out.strip()
        assert sid.startswith("s000000-")

        # A second, lower-priority session we cancel before serving.
        assert main(_submit(store, "--priority", "-1")) == 0
        sid2 = capsys.readouterr().out.strip()
        assert main(["cancel", sid2, "--store", str(store)]) == 0
        assert capsys.readouterr().out.strip() == "CANCELLED"

        assert main(["serve", "--store", str(store), "--drain",
                     "--poll", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "1 session(s) settled" in out

        assert main(["status", sid, "--store", str(store)]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["state"] == "DONE"
        assert view["result"]["digest"]

        assert main(["results", sid, "--store", str(store)]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["digest"] == view["result"]["digest"]

        assert main(["status", "--store", str(store)]) == 0
        table = capsys.readouterr().out
        assert sid in table and sid2 in table

    def test_submit_wait_blocks_until_done(self, tmp_path, capsys):
        import threading
        store = tmp_path / "store"
        # Drain daemon in a thread; the CLI submit --wait polls the store.
        daemon = threading.Thread(
            target=main, args=(["serve", "--store", str(store),
                               "--poll", "0.02", "--max-sessions", "1"],),
            daemon=True)
        daemon.start()
        code = main(_submit(store, "--wait", "--timeout", "120"))
        out = capsys.readouterr().out
        daemon.join(timeout=60)
        assert code == 0
        assert "state: DONE" in out
        assert "digest: " in out

    def test_bad_spec_fails_fast(self, tmp_path, capsys):
        assert main(["submit", "--workload", "pagerank", "--budget", "0",
                     "--store", str(tmp_path / "s")]) == 2
        assert "budget" in capsys.readouterr().err

    def test_missing_endpoint_fails_fast(self, capsys):
        assert main(["status"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_unknown_sid_errors(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(_submit(store)) == 0
        capsys.readouterr()
        assert main(["results", "s9-ffff", "--store", str(store)]) == 1
        assert main(["cancel", "s9-ffff", "--store", str(store)]) == 1

    def test_results_before_settle_is_an_error(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(_submit(store)) == 0
        sid = capsys.readouterr().out.strip()
        assert main(["results", sid, "--store", str(store)]) == 1
        assert "no result yet" in capsys.readouterr().err

    def test_bad_daemon_flags_fail_fast(self, tmp_path, capsys):
        assert main(["serve", "--store", str(tmp_path / "s"),
                     "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err
