"""In-process TuningDaemon tests: settle paths, recovery, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.journal import EvaluationJournal
from repro.obs import InMemorySink, Tracer
from repro.serve import (SessionCancelled, SessionSpec, SessionStore,
                         TuningDaemon, result_payload, run_session)

from .harness import fast_spec_kwargs

SPEC = SessionSpec(workload="pagerank", seed=4, **fast_spec_kwargs())


def drain(store, **kw):
    kw.setdefault("poll_s", 0.02)
    kw.setdefault("session_traces", False)
    return TuningDaemon(store, drain=True, **kw).run()


class TestSettlePaths:
    def test_success_settles_done_with_result(self, tmp_path):
        store = SessionStore(tmp_path / "store", fsync=False)
        sid = store.submit(SPEC)
        assert drain(store) == 1
        assert store.state(sid) == "DONE"
        assert store.result(sid)["digest"] == result_payload(
            SPEC, run_session(SPEC))["digest"]

    def test_broken_session_settles_failed(self, tmp_path):
        store = SessionStore(tmp_path / "store", fsync=False)
        # Spec validation cannot know the workload registry; the runner
        # discovers the bad name and the daemon settles FAILED.
        sid = store.submit(SessionSpec(workload="not-a-workload"))
        assert drain(store) == 1
        view = store.view(sid)
        assert view["state"] == "FAILED"
        assert "not-a-workload" in view["error"]

    def test_cancel_mid_run_settles_cancelled(self, tmp_path):
        store = SessionStore(tmp_path / "store", fsync=False)
        sid = store.submit(SessionSpec(workload="pagerank", seed=9,
                                       **fast_spec_kwargs(budget=200)))
        daemon = TuningDaemon(store, poll_s=0.02, session_traces=False)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        for _ in range(2400):  # wait for real progress, then cancel
            if store.journal_path(sid).exists() \
                    and store.journal_path(sid).stat().st_size > 0:
                break
            time.sleep(0.02)
        store.cancel(sid)
        for _ in range(2400):
            if store.state(sid) == "CANCELLED":
                break
            time.sleep(0.02)
        daemon.stop()
        thread.join(timeout=60)
        assert store.state(sid) == "CANCELLED"
        assert store.result(sid) is None

    def test_max_sessions_bounds_the_run(self, tmp_path):
        store = SessionStore(tmp_path / "store", fsync=False)
        for seed in (1, 2, 3):
            store.submit(SessionSpec(workload="pagerank", seed=seed,
                                     **fast_spec_kwargs()))
        settled = TuningDaemon(store, poll_s=0.02, max_sessions=2,
                               session_traces=False).run()
        assert settled == 2
        depth = store.queue_depth()
        assert depth["DONE"] == 2 and depth["PENDING"] == 1


class TestRecovery:
    def test_adopts_and_finishes_an_orphan_bit_identically(self, tmp_path):
        # Simulate a crashed daemon by hand: claim, abort the session
        # partway through (the journal keeps the prefix the "crashed"
        # process produced), then leave the claim lock stale on disk.
        store = SessionStore(tmp_path / "store", fsync=False)
        sid = store.submit(SPEC)
        claim = store.claim("doomed")
        assert claim is not None
        journal = EvaluationJournal(store.journal_path(sid))
        calls = iter(range(1000))
        with pytest.raises(SessionCancelled):
            # "Crash" after 12 objective calls (mid-tuning phase).
            run_session(SPEC, journal=journal,
                        should_cancel=lambda: next(calls) >= 12)
        journal.close()
        import json
        lock = store._lock_path(sid)
        holder = json.loads(lock.read_text())
        holder["pid"] = 2 ** 22 + 1  # the claimer "died"
        lock.write_text(json.dumps(holder))

        sink = InMemorySink()
        tracer = Tracer(sink)
        assert drain(store, tracer=tracer) == 1
        tracer.close()
        assert store.state(sid) == "DONE"
        golden = result_payload(SPEC, run_session(SPEC))
        assert store.result(sid)["digest"] == golden["digest"]
        counters = [r for r in sink.records if r.get("kind") == "metrics"]
        assert counters and counters[-1]["counters"]["serve.resumed"] == 1

    def test_queue_events_and_claim_timer_are_emitted(self, tmp_path):
        store = SessionStore(tmp_path / "store", fsync=False)
        store.submit(SPEC)
        sink = InMemorySink()
        tracer = Tracer(sink)
        drain(store, tracer=tracer)
        tracer.close()
        events = [r["type"] for r in sink.records if r.get("kind") == "event"]
        assert "serve.queue" in events
        assert "serve.claim" in events
        assert "serve.state" in events
        metrics = [r for r in sink.records if r.get("kind") == "metrics"]
        assert metrics and "serve.claim" in metrics[-1]["timers"]


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"workers": 0},
        {"poll_s": 0.0},
        {"max_sessions": 0},
    ])
    def test_bad_construction_rejected(self, tmp_path, kw):
        with pytest.raises(ValueError):
            TuningDaemon(SessionStore(tmp_path / "s"), **kw)
