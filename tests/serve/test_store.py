"""SessionStore unit tests: transitions, locking, recovery, index."""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import (Claim, SessionSpec, SessionStore, StaleClaimError)


def spec(**kw):
    kw.setdefault("workload", "pagerank")
    return SessionSpec(**kw)


@pytest.fixture()
def store(tmp_path):
    return SessionStore(tmp_path / "store")


class TestLifecycle:
    def test_submit_is_pending_and_listed(self, store):
        sid = store.submit(spec())
        assert store.state(sid) == "PENDING"
        assert [s["sid"] for s in store.list_sessions()] == [sid]
        assert store.queue_depth()["PENDING"] == 1

    def test_claim_runs_and_completes(self, store):
        sid = store.submit(spec())
        claim = store.claim("w0")
        assert claim.sid == sid and not claim.resumed
        assert store.state(sid) == "RUNNING"
        store.complete(claim, {"digest": "d" * 64})
        assert store.state(sid) == "DONE"
        assert store.result(sid)["digest"] == "d" * 64
        assert store.claim("w0") is None  # nothing left to run

    def test_fail_records_the_error(self, store):
        store.submit(spec())
        claim = store.claim()
        store.fail(claim, "boom")
        view = store.view(claim.sid)
        assert view["state"] == "FAILED"
        assert "boom" in view["error"]

    def test_unknown_sid_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            store.state("s999999-deadbeef")
        with pytest.raises(KeyError):
            store.cancel("s999999-deadbeef")

    def test_result_is_durable_before_done(self, store):
        # complete() writes result.json before flipping the state, so a
        # DONE state always has a readable result.
        sid = store.submit(spec())
        store.complete(store.claim(), {"x": 1})
        assert store.state(sid) == "DONE"
        assert store.result(sid) == {"x": 1}


class TestOrdering:
    def test_priority_then_submission_order(self, store):
        s_low = store.submit(spec(seed=1, priority=0))
        s_old = store.submit(spec(seed=2, priority=3))
        s_new = store.submit(spec(seed=3, priority=3))
        order = []
        while True:
            claim = store.claim()
            if claim is None:
                break
            order.append(claim.sid)
            store.complete(claim, {})
        assert order == [s_old, s_new, s_low]


class TestLocking:
    def test_two_handles_never_double_claim(self, store, tmp_path):
        other = SessionStore(tmp_path / "store")  # second handle, same dir
        store.submit(spec())
        first = store.claim("a")
        assert first is not None
        assert other.claim("b") is None  # live lock blocks the rival

    def test_settle_with_stale_claim_refused(self, store, tmp_path):
        other = SessionStore(tmp_path / "store")
        store.submit(spec())
        claim = store.claim("a")
        # Simulate the claimer dying: its lock records a dead pid.
        lock = store._lock_path(claim.sid)
        holder = json.loads(lock.read_text())
        holder["pid"] = 2 ** 22 + 1  # vanishingly unlikely to be alive
        lock.write_text(json.dumps(holder))
        adopted = other.claim("b")
        assert adopted is not None and adopted.resumed
        with pytest.raises(StaleClaimError):
            store.complete(claim, {})  # the original claim was taken over
        other.complete(adopted, {"ok": True})
        assert store.state(claim.sid) == "DONE"

    def test_dead_owner_running_session_is_adoptable(self, store):
        sid = store.submit(spec())
        claim = store.claim("a")
        # Crash: the lock stays on disk but its pid is dead.
        lock = store._lock_path(sid)
        holder = json.loads(lock.read_text())
        holder["pid"] = 2 ** 22 + 1
        lock.write_text(json.dumps(holder))
        adopted = store.claim("restarted")
        assert adopted is not None
        assert adopted.sid == sid
        assert adopted.resumed  # RUNNING state means work may exist
        assert adopted.token != claim.token

    def test_torn_lock_file_is_stale(self, store):
        sid = store.submit(spec())
        store._lock_path(sid).write_text("")  # crash between create+write
        claim = store.claim()
        assert claim is not None and claim.sid == sid

    def test_release_leaves_session_adoptable(self, store):
        sid = store.submit(spec())
        claim = store.claim("a")
        store.release(claim)
        assert store.state(sid) == "RUNNING"
        again = store.claim("b")
        assert again is not None and again.sid == sid and again.resumed


class TestCancellation:
    def test_pending_cancels_immediately(self, store):
        sid = store.submit(spec())
        assert store.cancel(sid) == "CANCELLED"
        assert store.state(sid) == "CANCELLED"
        assert store.claim() is None

    def test_running_gets_a_marker(self, store):
        sid = store.submit(spec())
        claim = store.claim()
        assert store.cancel(sid) == "requested"
        assert store.cancel_requested(sid)
        store.cancelled(claim)
        assert store.state(sid) == "CANCELLED"

    def test_terminal_cancel_is_a_no_op(self, store):
        sid = store.submit(spec())
        store.complete(store.claim(), {})
        assert store.cancel(sid) == "DONE"
        assert store.state(sid) == "DONE"

    def test_cancelled_pending_is_not_claimed(self, store):
        # A cancel marker that lands while the session is still PENDING
        # (but the lock was contended) is honored at claim time.
        sid = store.submit(spec())
        store._write_json(store._cancel_marker(sid), {"requested": True})
        assert store.claim() is None
        assert store.state(sid) == "CANCELLED"


class TestIndex:
    def test_rebuild_matches_cache_after_operations(self, store):
        s1 = store.submit(spec(seed=1))
        store.submit(spec(seed=2, priority=4))
        store.complete(store.claim(), {})  # settles the priority-4 one
        store.cancel(s1)
        assert store.rebuild_index() == store.load_index()

    def test_lost_cache_is_recoverable(self, store):
        sids = [store.submit(spec(seed=i)) for i in range(3)]
        cached = store.load_index()
        (store.root / "index.json").unlink()
        assert store.repair_index() == cached
        assert [s["sid"] for s in store.list_sessions()] == sids

    def test_next_seq_survives_cache_loss(self, store):
        store.submit(spec(seed=1))
        (store.root / "index.json").unlink()
        store.repair_index()
        sid2 = store.submit(spec(seed=2))
        assert sid2.startswith("s000001-")  # no seq reuse

    def test_stale_index_lock_is_taken_over(self, store):
        (store.root).mkdir(parents=True, exist_ok=True)
        (store.root / "index.lock").write_text(str(2 ** 22 + 1))
        sid = store.submit(spec())  # must not deadlock
        assert store.state(sid) == "PENDING"

    def test_daemon_registration_round_trips(self, store):
        store.write_daemon_info({"pid": os.getpid(), "address": "x:1"})
        assert store.daemon_info()["address"] == "x:1"


class TestTracePaths:
    def test_trace_paths_count_attempts(self, store):
        sid = store.submit(spec())
        p0 = store.next_trace_path(sid)
        assert p0.name == "trace-0.jsonl"
        p0.write_text("{}\n")
        assert store.next_trace_path(sid).name == "trace-1.jsonl"
        assert [p.name for p in store.trace_paths(sid)] == ["trace-0.jsonl"]


class TestClaimToken:
    def test_claim_is_frozen_proof(self):
        claim = Claim(sid="s", spec=spec(), token="t", resumed=False)
        with pytest.raises(AttributeError):
            claim.token = "forged"
