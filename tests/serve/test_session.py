"""SessionSpec validation, round-trips, and the evaluation digest."""

from __future__ import annotations

import pytest

import numpy as np

from repro.serve import (STATES, TERMINAL_STATES, TRANSITIONS, SessionSpec,
                         evaluation_digest)
from repro.sparksim.result import RunStatus
from repro.tuners.base import Evaluation


class TestSpecValidation:
    def test_defaults_are_the_paper_session(self):
        spec = SessionSpec(workload="pagerank")
        assert spec.budget == 100
        assert spec.init_samples == 20
        assert spec.selection_samples is None  # keep the paper's 100
        assert spec.async_workers == 0  # the bit-reproducible loop

    @pytest.mark.parametrize("bad", [
        {"workload": ""},
        {"workload": "pagerank", "budget": 0},
        {"workload": "pagerank", "init_samples": 1},
        {"workload": "pagerank", "selection_samples": 5},
        {"workload": "pagerank", "fault_rate": 1.5},
        {"workload": "pagerank", "retries": -1},
        {"workload": "pagerank", "eval_timeout_s": 5.0},  # needs workers
        {"workload": "pagerank", "speculate": True},  # needs timeout
        {"workload": "pagerank", "time_limit_s": 0.0},
    ])
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError):
            SessionSpec(**bad)

    def test_round_trip(self):
        spec = SessionSpec(workload="kmeans", dataset="D2", budget=7,
                           seed=9, priority=2, fault_rate=0.1,
                           tags={"owner": "ci"})
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown session spec"):
            SessionSpec.from_dict({"workload": "pagerank", "nope": 1})


class TestLifecycleTables:
    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert TRANSITIONS[state] == ()

    def test_every_state_is_known(self):
        assert set(TRANSITIONS) == set(STATES)
        for targets in TRANSITIONS.values():
            assert set(targets) <= set(STATES)


def _evaluation(objective=10.0, cost=1.0, status=RunStatus.SUCCESS, **kw):
    return Evaluation(vector=np.array([0.25, 0.75]),
                      config={"a": 1, "b": "x"}, objective=objective,
                      cost_s=cost, status=status, **kw)


class TestDigest:
    def test_equal_streams_digest_equal(self):
        a = [_evaluation(), _evaluation(20.0, 2.0)]
        b = [_evaluation(), _evaluation(20.0, 2.0)]
        assert evaluation_digest(a) == evaluation_digest(b)

    def test_any_field_changes_the_digest(self):
        base = evaluation_digest([_evaluation()])
        assert evaluation_digest([_evaluation(objective=10.5)]) != base
        assert evaluation_digest([_evaluation(cost=1.5)]) != base
        assert evaluation_digest(
            [_evaluation(status=RunStatus.OOM)]) != base

    def test_order_matters(self):
        a, b = _evaluation(), _evaluation(20.0)
        assert evaluation_digest([a, b]) != evaluation_digest([b, a])

    def test_empty_stream_is_stable(self):
        assert evaluation_digest([]) == evaluation_digest(())
