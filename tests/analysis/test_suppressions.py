"""Suppression syntax, RPA000 hygiene findings, and engine matching."""

from __future__ import annotations

from lintutils import active, rules_of

from repro.analysis.suppressions import scan_suppressions


class TestScanSuppressions:
    def test_parses_well_formed_directive(self):
        sups, problems = scan_suppressions(
            "x = 1  # repro: noqa RPD001 -- baseline harness needs it\n")
        assert problems == []
        assert sups[1].rules == ("RPD001",)
        assert sups[1].justification == "baseline harness needs it"

    def test_parses_multiple_ids(self):
        sups, _ = scan_suppressions(
            "x = 1  # repro: noqa RPD001, RPF002 -- shared reason\n")
        assert sups[1].rules == ("RPD001", "RPF002")

    def test_missing_justification_is_a_problem(self):
        sups, problems = scan_suppressions("x = 1  # repro: noqa RPD001\n")
        assert sups == {}
        assert len(problems) == 1
        assert "justification" in problems[0].message

    def test_missing_rule_id_is_a_problem(self):
        _, problems = scan_suppressions("x = 1  # repro: noqa -- because\n")
        assert len(problems) == 1
        assert "no rule id" in problems[0].message

    def test_marker_inside_string_is_ignored(self):
        sups, problems = scan_suppressions(
            's = "# repro: noqa RPD001 -- not a directive"\n')
        assert sups == {} and problems == []


class TestSuppressionHygieneRule:
    def test_malformed_directive_is_rpa000(self, lint):
        findings = lint("""\
            import random  # repro: noqa RPD002
        """)
        hygiene = rules_of(findings, "RPA000")
        assert len(hygiene) == 1
        assert "justification" in hygiene[0].message
        # The malformed directive does NOT silence the underlying finding.
        assert len(active(rules_of(findings, "RPD002"))) == 1

    def test_unknown_rule_id_is_rpa000(self, lint):
        findings = lint("""\
            x = 1  # repro: noqa RPZ999 -- no such rule
        """)
        hygiene = rules_of(findings, "RPA000")
        assert len(hygiene) == 1
        assert "RPZ999" in hygiene[0].message

    def test_unused_suppression_is_rpa000(self, lint):
        findings = lint("""\
            x = 1  # repro: noqa RPD001 -- nothing to suppress here
        """)
        hygiene = rules_of(findings, "RPA000")
        assert len(hygiene) == 1
        assert "unused" in hygiene[0].message

    def test_used_suppression_is_clean(self, lint):
        findings = lint("""\
            import random  # repro: noqa RPD002 -- exercising the machinery
        """)
        assert rules_of(findings, "RPA000") == []
        assert active(findings) == []

    def test_suppression_only_covers_named_rule(self, lint):
        findings = lint("""\
            import numpy as np
            np.random.seed(0)  # repro: noqa RPD002 -- wrong rule named
        """)
        # RPD001 still fires (the noqa names RPD002), and the directive is
        # flagged as unused.
        assert len(active(rules_of(findings, "RPD001"))) == 1
        assert len(rules_of(findings, "RPA000")) == 1

    def test_syntax_error_reported_under_meta_rule(self, lint):
        findings = lint("def broken(:\n")
        hits = rules_of(findings, "RPA000")
        assert len(hits) == 1
        assert "does not parse" in hits[0].message
