"""RPE rule pack: dead public exports on repro.core's front door."""

from __future__ import annotations

from pathlib import Path

from lintutils import active, rules_of

INIT = "src/repro/core/__init__.py"


def _write(tmp_path: Path, rel: str, source: str) -> None:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")


class TestDeadCoreExport:
    def test_flags_export_with_no_call_site(self, lint, tmp_path):
        _write(tmp_path, "src/repro/core/widget.py", "class Widget:\n    pass\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = ["Widget"]
        """, rel=INIT)
        hits = rules_of(findings, "RPE001")
        assert len(hits) == 1
        assert "Widget" in hits[0].message

    def test_defining_module_does_not_count_as_consumer(self, lint, tmp_path):
        # The class is named repeatedly inside its own module; that is
        # not a call site.
        _write(tmp_path, "src/repro/core/widget.py",
               "class Widget:\n    pass\n\n\ndef make() -> Widget:\n"
               "    return Widget()\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = ["Widget"]
        """, rel=INIT)
        assert len(rules_of(findings, "RPE001")) == 1

    def test_call_site_in_sibling_module_clears(self, lint, tmp_path):
        _write(tmp_path, "src/repro/core/widget.py", "class Widget:\n    pass\n")
        _write(tmp_path, "src/repro/other/user.py",
               "from ..core.widget import Widget\n\nw = Widget()\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = ["Widget"]
        """, rel=INIT)
        assert rules_of(findings, "RPE001") == []

    def test_call_site_in_benchmarks_clears(self, lint, tmp_path):
        _write(tmp_path, "src/repro/core/widget.py", "class Widget:\n    pass\n")
        _write(tmp_path, "benchmarks/test_widget_perf.py",
               "from repro.core import Widget\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = ["Widget"]
        """, rel=INIT)
        assert rules_of(findings, "RPE001") == []

    def test_reexporting_init_does_not_count(self, lint, tmp_path):
        _write(tmp_path, "src/repro/core/widget.py", "class Widget:\n    pass\n")
        _write(tmp_path, "src/repro/__init__.py",
               "from .core import Widget\n\n__all__ = [\"Widget\"]\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = ["Widget"]
        """, rel=INIT)
        assert len(rules_of(findings, "RPE001")) == 1

    def test_suppression_with_justification(self, lint, tmp_path):
        _write(tmp_path, "src/repro/core/widget.py", "class Widget:\n    pass\n")
        findings = lint("""\
            from .widget import Widget

            __all__ = [
                "Widget",  # repro: noqa RPE001 -- kept for external consumers
            ]
        """, rel=INIT)
        hits = rules_of(findings, "RPE001")
        assert len(hits) == 1
        assert hits[0].suppressed
        assert active(hits) == []

    def test_only_core_init_is_checked(self, lint, tmp_path):
        findings = lint("""\
            __all__ = ["nothing_uses_me"]
        """, rel="src/repro/obs/__init__.py")
        assert rules_of(findings, "RPE001") == []

    def test_real_core_init_is_clean(self):
        from repro.analysis.engine import analyze_file
        from repro.analysis.registry import build_rules
        root = Path(__file__).resolve().parents[2]
        init = root / "src" / "repro" / "core" / "__init__.py"
        findings = analyze_file(init, build_rules(select=["RPE001"]),
                                display=init.as_posix())
        assert active(rules_of(findings, "RPE001")) == []
