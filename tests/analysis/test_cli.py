"""CLI behavior: selection, formats, exit codes, and the CI gate.

The last test is the acceptance demonstration for the CI job: a seeded
violation makes ``python -m repro.analysis`` exit non-zero, with the
violation visible in the JSON report the job consumes.
"""

from __future__ import annotations

import json
import textwrap

from repro.analysis.cli import main

_CLEAN = """\
import numpy as np

def sample(n, rng):
    return rng.random(n)
"""

_SEEDED_VIOLATION = """\
import numpy as np

def sample(n):
    np.random.seed(0)
    return np.random.rand(n)
"""


def _write(tmp_path, source, rel="src/repro/core/fixture_mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    _write(tmp_path, _CLEAN)
    assert main([str(tmp_path / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_violation_exits_one(tmp_path, capsys):
    _write(tmp_path, _SEEDED_VIOLATION)
    assert main([str(tmp_path / "src")]) == 1
    out = capsys.readouterr().out
    assert "RPD001" in out


def test_select_restricts_rules(tmp_path):
    _write(tmp_path, _SEEDED_VIOLATION)
    assert main([str(tmp_path / "src"), "--select", "RPF001"]) == 0
    assert main([str(tmp_path / "src"), "--select", "RPD001,RPF001"]) == 1


def test_ignore_drops_rules(tmp_path):
    _write(tmp_path, _SEEDED_VIOLATION)
    assert main([str(tmp_path / "src"), "--ignore", "RPD001"]) == 0


def test_unknown_rule_id_is_usage_error(tmp_path, capsys):
    _write(tmp_path, _CLEAN)
    assert main([str(tmp_path / "src"), "--select", "NOPE1"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "does-not-exist")]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPA000", "RPD001", "RPD002", "RPD003", "RPD004",
                    "RPF001", "RPF002", "RPN001", "RPN002", "RPN003",
                    "RPP001", "RPP002", "RPP003"):
        assert rule_id in out


def test_ci_gate_fails_on_seeded_violation_via_json(tmp_path, capsys):
    """A seeded violation fails the build, and the JSON report names it."""
    _write(tmp_path, _SEEDED_VIOLATION)
    exit_code = main([str(tmp_path / "src"), "--format", "json"])
    assert exit_code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["unsuppressed"] == 2  # seed() and rand()
    rules = {f["rule"] for f in doc["findings"] if not f["suppressed"]}
    assert rules == {"RPD001"}
    # Suppressing with a justification turns the same tree green.
    _write(tmp_path, """\
        import numpy as np

        def sample(n):
            np.random.seed(0)  # repro: noqa RPD001 -- fixture: legacy baseline wants global seeding
            return np.random.default_rng(0).random(n)
    """)
    assert main([str(tmp_path / "src"), "--format", "json"]) == 0
