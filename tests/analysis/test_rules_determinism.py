"""RPD rule pack: true positives, true negatives, suppressions."""

from __future__ import annotations

from lintutils import active, rules_of


class TestGlobalNumpyRNG:
    def test_flags_global_rng_call(self, lint):
        findings = lint("""\
            import numpy as np

            def sample(n):
                return np.random.rand(n)
        """)
        hits = rules_of(findings, "RPD001")
        assert len(hits) == 1
        assert hits[0].line == 4
        assert "np.random.rand" in hits[0].message

    def test_flags_seed_and_shuffle(self, lint):
        findings = lint("""\
            import numpy as np
            np.random.seed(0)
            np.random.shuffle([1, 2])
        """)
        assert len(rules_of(findings, "RPD001")) == 2

    def test_flags_legacy_import(self, lint):
        findings = lint("from numpy.random import randint\n")
        assert len(rules_of(findings, "RPD001")) == 1

    def test_allows_generator_api(self, lint):
        findings = lint("""\
            import numpy as np
            from numpy.random import Generator, SeedSequence

            def sample(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
        """)
        assert rules_of(findings, "RPD001") == []

    def test_suppression_with_justification(self, lint):
        findings = lint("""\
            import numpy as np
            np.random.seed(0)  # repro: noqa RPD001 -- legacy comparison harness seeds once for a third-party baseline
        """)
        hits = rules_of(findings, "RPD001")
        assert len(hits) == 1 and hits[0].suppressed
        assert "third-party baseline" in hits[0].justification
        assert active(findings) == []


class TestStdlibRandom:
    def test_flags_import(self, lint):
        findings = lint("import random\n")
        assert len(rules_of(findings, "RPD002")) == 1

    def test_flags_import_from(self, lint):
        findings = lint("from random import shuffle\n")
        assert len(rules_of(findings, "RPD002")) == 1

    def test_allows_own_modules_named_random(self, lint):
        findings = lint("""\
            from repro.sampling import random_sampling
            from repro.tuners.random_search import RandomSearchTuner
        """)
        assert rules_of(findings, "RPD002") == []


class TestWallClock:
    def test_flags_time_in_decision_path(self, lint):
        findings = lint("""\
            import time

            def decide():
                return time.time()
        """, rel="src/repro/tuners/fixture_mod.py")
        hits = rules_of(findings, "RPD003")
        assert len(hits) == 1
        assert "time.time" in hits[0].message

    def test_flags_perf_counter_and_datetime(self, lint):
        findings = lint("""\
            import time
            from datetime import datetime

            def decide():
                return time.perf_counter(), datetime.now()
        """, rel="src/repro/ml/fixture_mod.py")
        assert len(rules_of(findings, "RPD003")) == 2

    def test_allows_wall_clock_outside_decision_path(self, lint):
        source = """\
            import time

            def measure():
                return time.perf_counter()
        """
        for rel in ("src/repro/bench/fixture_mod.py",
                    "src/repro/sparksim/fixture_mod.py",
                    "benchmarks/fixture_mod.py"):
            assert rules_of(lint(source, rel=rel), "RPD003") == []

    def test_allows_guard_wall_clock_accounting(self, lint):
        findings = lint("""\
            import time

            def account():
                return time.monotonic()
        """, rel="src/repro/core/guard.py")
        assert rules_of(findings, "RPD003") == []


class TestClockOutsideObservability:
    def test_flags_monotonic_call_anywhere_in_repro(self, lint):
        findings = lint("""\
            import time

            def measure():
                return time.monotonic()
        """, rel="src/repro/utils/fixture_mod.py")
        hits = rules_of(findings, "RPD005")
        assert len(hits) == 1
        assert "time.monotonic" in hits[0].message
        assert "tracer.timer" in hits[0].message

    def test_flags_perf_counter_in_non_decision_packages(self, lint):
        """RPD003 stops at the decision path; RPD005 covers the rest."""
        source = """\
            import time

            def measure():
                return time.perf_counter()
        """
        for rel in ("src/repro/bench/fixture_mod.py",
                    "src/repro/sparksim/fixture_mod.py",
                    "src/repro/faults/fixture_mod.py"):
            assert len(rules_of(lint(source, rel=rel), "RPD005")) == 1

    def test_flags_from_import(self, lint):
        findings = lint("from time import perf_counter\n",
                        rel="src/repro/utils/fixture_mod.py")
        assert len(rules_of(findings, "RPD005")) == 1

    def test_allows_the_observability_layer(self, lint):
        source = """\
            import time

            def stamp():
                return time.monotonic()
        """
        for rel in ("src/repro/obs/tracer.py", "src/repro/obs/fixture_mod.py"):
            assert rules_of(lint(source, rel=rel), "RPD005") == []

    def test_allows_guard_accounting(self, lint):
        findings = lint("""\
            import time

            def account():
                return time.monotonic()
        """, rel="src/repro/core/guard.py")
        assert rules_of(findings, "RPD005") == []

    def test_allows_non_monotonic_time_and_outside_repro(self, lint):
        # time.time() is RPD003's business (decision path only), and
        # code outside src/repro is out of scope entirely.
        assert rules_of(lint("""\
            import time
            t = time.time()
        """, rel="src/repro/bench/fixture_mod.py"), "RPD005") == []
        assert rules_of(lint("""\
            import time
            t = time.monotonic()
        """, rel="benchmarks/fixture_mod.py"), "RPD005") == []

    def test_suppression_with_justification(self, lint):
        findings = lint("""\
            import time
            t0 = time.monotonic()  # repro: noqa RPD005 -- bootstrap timing before any tracer exists
        """, rel="src/repro/utils/fixture_mod.py")
        hits = rules_of(findings, "RPD005")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []


class TestUnorderedIteration:
    def test_flags_for_over_set_call(self, lint):
        findings = lint("""\
            def tie_break(candidates):
                for c in set(candidates):
                    yield c
        """)
        assert len(rules_of(findings, "RPD004")) == 1

    def test_flags_set_literal_and_comprehension(self, lint):
        findings = lint("""\
            def f(xs):
                a = [x for x in {1, 2, 3}]
                b = list({x for x in xs})
                return a, b
        """)
        assert len(rules_of(findings, "RPD004")) == 2

    def test_allows_sorted_set(self, lint):
        findings = lint("""\
            def tie_break(candidates):
                for c in sorted(set(candidates)):
                    yield c
        """)
        assert rules_of(findings, "RPD004") == []

    def test_allows_dict_iteration(self, lint):
        findings = lint("""\
            def f(d):
                return [k for k in d.keys()] + list(d.values())
        """)
        assert rules_of(findings, "RPD004") == []
