"""Shared helpers for the linter tests (imported by basedir insertion)."""

from __future__ import annotations


def rules_of(findings, rule_id: str):
    """Findings for one rule id (suppressed included)."""
    return [f for f in findings if f.rule == rule_id]


def active(findings):
    """Unsuppressed findings only."""
    return [f for f in findings if not f.suppressed]
