"""RPF rule pack: true positives, true negatives, suppressions."""

from __future__ import annotations

from lintutils import active, rules_of


class TestBlindExceptionHandler:
    def test_flags_bare_except(self, lint):
        findings = lint("""\
            def f():
                try:
                    return 1
                except:
                    return None
        """)
        hits = rules_of(findings, "RPF001")
        assert len(hits) == 1
        assert "bare" in hits[0].message

    def test_flags_swallowed_exception(self, lint):
        findings = lint("""\
            def f():
                try:
                    return 1
                except Exception:
                    pass
        """)
        assert len(rules_of(findings, "RPF001")) == 1

    def test_flags_swallowed_base_exception_in_tuple(self, lint):
        findings = lint("""\
            def f():
                try:
                    return 1
                except (ValueError, BaseException):
                    ...
        """)
        assert len(rules_of(findings, "RPF001")) == 1

    def test_allows_typed_handler(self, lint):
        findings = lint("""\
            import numpy as np

            def f():
                try:
                    return 1
                except (ValueError, np.linalg.LinAlgError):
                    return None
        """)
        assert rules_of(findings, "RPF001") == []

    def test_allows_broad_handler_that_acts(self, lint):
        findings = lint("""\
            def f(log):
                try:
                    return 1
                except Exception as exc:
                    log.warning("eval failed: %s", exc)
                    raise
        """)
        assert rules_of(findings, "RPF001") == []


class TestRawFileWrite:
    def test_flags_open_for_write_in_repro(self, lint):
        findings = lint("""\
            def dump(path, payload):
                with open(path, "a") as fh:
                    fh.write(payload)
        """)
        hits = rules_of(findings, "RPF002")
        assert len(hits) == 1
        assert "EvaluationJournal" in hits[0].message

    def test_flags_write_text(self, lint):
        findings = lint("""\
            from pathlib import Path

            def dump(path, payload):
                Path(path).write_text(payload)
        """)
        assert len(rules_of(findings, "RPF002")) == 1

    def test_allows_reading(self, lint):
        findings = lint("""\
            def load(path):
                with open(path, encoding="utf-8") as fh:
                    return fh.read()
        """)
        assert rules_of(findings, "RPF002") == []

    def test_journal_module_is_exempt(self, lint):
        findings = lint("""\
            def _write_line(path, payload):
                fh = open(path, "a", encoding="utf-8")
                fh.write(payload)
        """, rel="src/repro/core/journal.py")
        assert rules_of(findings, "RPF002") == []

    def test_trace_sink_module_is_exempt(self, lint):
        findings = lint("""\
            def _append(path, payload):
                fh = open(path, "a", encoding="utf-8")
                fh.write(payload)
        """, rel="src/repro/obs/sinks.py")
        assert rules_of(findings, "RPF002") == []

    def test_outside_repro_package_is_exempt(self, lint):
        findings = lint("""\
            from pathlib import Path

            def emit(path, text):
                Path(path).write_text(text)
        """, rel="benchmarks/fixture_mod.py")
        assert rules_of(findings, "RPF002") == []

    def test_suppression(self, lint):
        findings = lint("""\
            from pathlib import Path

            def emit(path, text):
                Path(path).write_text(text)  # repro: noqa RPF002 -- user-requested artifact export, not evaluation state
        """)
        hits = rules_of(findings, "RPF002")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []
