"""The linter must pass over its own repository (self-hosting gate)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import all_rule_ids, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_at_least_ten_rules_registered():
    assert len(all_rule_ids()) >= 10


def test_src_is_clean_in_process():
    report = analyze_paths([REPO_ROOT / "src"])
    assert report.exit_code == 0, [f.location() + " " + f.message
                                   for f in report.unsuppressed]
    assert report.files_scanned > 50


def test_benchmarks_are_clean_in_process():
    report = analyze_paths([REPO_ROOT / "benchmarks"])
    assert report.exit_code == 0, [f.location() + " " + f.message
                                   for f in report.unsuppressed]


def test_cli_self_host_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_self_host_src_and_benchmarks():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "benchmarks"],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
