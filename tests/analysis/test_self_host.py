"""The linter must pass over its own repository (self-hosting gate)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import all_rule_ids, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_at_least_ten_rules_registered():
    assert len(all_rule_ids()) >= 10


def test_whole_program_rule_family_registered():
    ids = set(all_rule_ids())
    assert {"RPX001", "RPX002", "RPX003", "RPX004"} <= ids
    assert len(ids) >= 21


def test_src_is_clean_in_process():
    report = analyze_paths([REPO_ROOT / "src"])
    assert report.exit_code == 0, [f.location() + " " + f.message
                                   for f in report.unsuppressed]
    assert report.files_scanned > 50


def test_benchmarks_are_clean_in_process():
    report = analyze_paths([REPO_ROOT / "benchmarks"])
    assert report.exit_code == 0, [f.location() + " " + f.message
                                   for f in report.unsuppressed]


def test_every_suppression_carries_a_written_justification():
    report = analyze_paths([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
    for finding in report.suppressed:
        assert finding.justification, finding.location()
        assert len(finding.justification.split()) >= 3, finding.location()


def test_cached_parallel_rerun_matches_serial_run(tmp_path):
    serial = analyze_paths([REPO_ROOT / "src"])
    cache = tmp_path / "cache"
    analyze_paths([REPO_ROOT / "src"], cache_dir=cache, n_jobs=2)
    warm = analyze_paths([REPO_ROOT / "src"], cache_dir=cache, n_jobs=2)
    assert warm.cache_misses == 0
    key = lambda r: [(f.rule, f.path, f.line, f.suppressed)  # noqa: E731
                     for f in r.findings]
    assert key(warm) == key(serial)


def test_cli_self_host_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src"],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_self_host_src_and_benchmarks():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "benchmarks"],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_graph_dump_renders_the_project():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--graph", "src"],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "project graph:" in proc.stdout
    assert "module repro.core.bo" in proc.stdout
    assert "->" in proc.stdout
