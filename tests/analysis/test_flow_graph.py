"""Flow substrate: symbol table, call resolution, summaries, dataflow."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.context import ModuleContext
from repro.analysis.flow import build_flow_project, module_name_for
from repro.analysis.flow.dataflow import reachable_from


def _project(tmp_path: Path, files: dict[str, str]):
    ctxs = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        ctxs.append(ModuleContext.parse(path, display=path.as_posix()))
    return build_flow_project(ctxs)


class TestModuleNaming:
    @pytest.mark.parametrize("display,expected", [
        ("src/repro/core/bo.py", "repro.core.bo"),
        ("src/repro/__init__.py", "repro"),
        ("src/repro/core/__init__.py", "repro.core"),
        ("/tmp/x/src/repro/ml/tree.py", "repro.ml.tree"),
        ("benchmarks/test_perf.py", "benchmarks.test_perf"),
    ])
    def test_display_to_dotted(self, display, expected):
        assert module_name_for(display) == expected


class TestSymbolsAndCalls:
    def test_functions_classes_and_methods_indexed(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/eng.py": """\
                class Engine:
                    def step(self):
                        return self._inner()

                    def _inner(self):
                        return 1


                def helper():
                    return 2
            """})
        graph = project.graph
        assert "repro.core.eng.helper" in graph.functions
        assert "repro.core.eng.Engine.step" in graph.functions
        cls = graph.classes["repro.core.eng.Engine"]
        assert cls.methods["_inner"] == "repro.core.eng.Engine._inner"

    def test_self_call_resolves_to_method(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/eng.py": """\
                class Engine:
                    def step(self):
                        return self._inner()

                    def _inner(self):
                        return 1
            """})
        summary = project.summaries["repro.core.eng.Engine.step"]
        assert "repro.core.eng.Engine._inner" in summary.resolved_callees

    def test_relative_import_call_resolves(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                from ..utils.helpers import work


                def run():
                    return work()
            """,
            "src/repro/utils/helpers.py": """\
                def work():
                    return 1
            """})
        summary = project.summaries["repro.core.a.run"]
        assert "repro.utils.helpers.work" in summary.resolved_callees

    def test_base_class_method_resolves_across_modules(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/base.py": """\
                class Base:
                    def fold(self):
                        return 0
            """,
            "src/repro/core/child.py": """\
                from .base import Base


                class Child(Base):
                    def go(self):
                        return self.fold()
            """})
        summary = project.summaries["repro.core.child.Child.go"]
        assert "repro.core.base.Base.fold" in summary.resolved_callees

    def test_unresolvable_call_grows_no_edge(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                import numpy as np


                def run():
                    return np.mean([1.0])
            """})
        assert project.summaries["repro.core.a.run"].resolved_callees == set()

    def test_render_lists_modules_and_edges(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                def inner():
                    return 1


                def outer():
                    return inner()
            """})
        dump = project.render()
        assert "module repro.core.a" in dump
        assert "-> repro.core.a.inner" in dump


class TestSummaries:
    def test_fresh_vs_spawned_rngs(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                import numpy as np

                from ..utils.rng import spawn


                def run(seed):
                    rng = np.random.default_rng(seed)
                    children = spawn(rng, 3)
                    child = children[0]
                    return rng, child
            """})
        summary = project.summaries["repro.core.a.run"]
        assert "rng" in summary.fresh_rngs
        assert "children" in summary.spawned_rngs
        assert "child" not in summary.fresh_rngs

    def test_submit_site_captures_closure_and_defaults(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                def run(pool, runner, threshold):
                    pool.submit(lambda r=runner: r(threshold))
            """})
        summary = project.summaries["repro.core.a.run"]
        assert len(summary.submit_sites) == 1
        captured = set(summary.submit_sites[0].captured)
        assert {"runner", "threshold"} <= captured

    def test_parallel_map_is_a_submit_site(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                from ..utils.parallel import parallel_map


                def run(items, state):
                    return parallel_map(lambda it: (it, state), items)
            """})
        summary = project.summaries["repro.core.a.run"]
        assert [s.kind for s in summary.submit_sites] == ["parallel_map"]
        assert "state" in summary.submit_sites[0].captured

    def test_tracer_calls_and_with_items(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                def run(tracer, name):
                    tracer.count("evals", 1)
                    tracer.emit(name, {})
                    with tracer.span("bo"):
                        pass
            """})
        calls = {c.method: c
                 for c in project.summaries["repro.core.a.run"].tracer_calls}
        assert calls["count"].name == "evals" and calls["count"].literal
        assert not calls["emit"].literal
        assert calls["span"].with_item

    def test_open_sites_record_storage_target(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                class Sink:
                    def start(self, path):
                        self._fh = open(path, "a")


                def scratch(path):
                    fh = open(path, "w")
                    return fh


                def managed(path):
                    with open(path, "w") as fh:
                        fh.write("x")
            """})
        start = project.summaries["repro.core.a.Sink.start"]
        assert [o.target for o in start.opens] == ["self._fh"]
        scratch = project.summaries["repro.core.a.scratch"]
        assert [o.target for o in scratch.opens] == ["fh"]
        assert project.summaries["repro.core.a.managed"].opens == []


class TestDataflow:
    def test_escape_propagates_through_call_chain(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/sink.py": """\
                def dispatch(pool, rng):
                    pool.submit(lambda r=rng: r.random())
            """,
            "src/repro/core/mid.py": """\
                from .sink import dispatch


                def relay(pool, generator):
                    dispatch(pool, generator)
            """})
        sink = project.summaries["repro.core.sink.dispatch"]
        mid = project.summaries["repro.core.mid.relay"]
        assert "rng" in sink.escaping_params
        assert "generator" in mid.escaping_params

    def test_keyword_forwarding_escapes(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/sink.py": """\
                def dispatch(pool, rng):
                    pool.submit(lambda r=rng: r.random())


                def relay(pool, generator):
                    dispatch(pool, rng=generator)
            """})
        relay = project.summaries["repro.core.sink.relay"]
        assert "generator" in relay.escaping_params

    def test_reachability_returns_witness_path(self, tmp_path):
        project = _project(tmp_path, {
            "src/repro/core/a.py": """\
                def leaf():
                    return 1


                def mid():
                    return leaf()


                def root():
                    return mid()
            """})
        paths = reachable_from(("repro.core.a.root",), project.summaries,
                               project.graph)
        assert paths["repro.core.a.leaf"] == (
            "repro.core.a.root", "repro.core.a.mid", "repro.core.a.leaf")
