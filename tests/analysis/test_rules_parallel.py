"""RPP rule pack: true positives, true negatives, suppressions."""

from __future__ import annotations

from lintutils import active, rules_of


class TestNonPicklableWorker:
    def test_flags_lambda_with_process_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            def run(items):
                return parallel_map(lambda x: x + 1, items, backend="process")
        """)
        hits = rules_of(findings, "RPP001")
        assert len(hits) == 1
        assert "lambda" in hits[0].message

    def test_flags_nested_function_with_dynamic_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            def run(items, backend):
                def worker(x):
                    return x + 1
                return parallel_map(worker, items, backend=backend)
        """)
        hits = rules_of(findings, "RPP001")
        assert len(hits) == 1
        assert "worker" in hits[0].message

    def test_allows_nested_worker_on_thread_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            def run(items, scale):
                def worker(x):
                    return x * scale
                return parallel_map(worker, items, backend="thread")
        """)
        assert rules_of(findings, "RPP001") == []

    def test_allows_module_level_worker_default_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            def worker(x):
                return x + 1

            def run(items):
                return parallel_map(worker, items, backend="process")
        """)
        assert rules_of(findings, "RPP001") == []


class TestWorkerClosesOverSelf:
    def test_flags_bound_method_with_dynamic_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            class Harness:
                def run(self, items):
                    return parallel_map(self._job, items,
                                        backend=self.parallel_backend)
        """)
        hits = rules_of(findings, "RPP002")
        assert len(hits) == 1
        assert "self._job" in hits[0].message

    def test_flags_nested_worker_referencing_self(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            class Harness:
                def run(self, items):
                    def worker(x):
                        return self.score(x)
                    return parallel_map(worker, items, backend="process")
        """)
        assert len(rules_of(findings, "RPP002")) == 1

    def test_allows_bound_method_on_thread_backend(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            class Harness:
                def run(self, items):
                    return parallel_map(self._job, items, backend="thread")
        """)
        assert rules_of(findings, "RPP002") == []

    def test_suppression(self, lint):
        findings = lint("""\
            from repro.utils.parallel import parallel_map

            class Harness:
                def run(self, items):
                    return parallel_map(self._job, items,  # repro: noqa RPP002 -- Harness is picklable by design; round-trip covered in tests
                                        backend=self.parallel_backend)
        """)
        hits = rules_of(findings, "RPP002")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []


class TestSharedStateMutation:
    def test_flags_global_statement(self, lint):
        findings = lint("""\
            _CACHE = None

            def build():
                global _CACHE
                _CACHE = 1
        """)
        hits = rules_of(findings, "RPP003")
        assert len(hits) == 1
        assert "_CACHE" in hits[0].message

    def test_flags_rng_default_argument(self, lint):
        findings = lint("""\
            import numpy as np

            def sample(n, rng=np.random.default_rng(0)):
                return rng.random(n)
        """)
        hits = rules_of(findings, "RPP003")
        assert len(hits) == 1
        assert "default argument" in hits[0].message

    def test_allows_none_default_with_coercion(self, lint):
        findings = lint("""\
            from repro.utils.rng import as_generator

            def sample(n, rng=None):
                rng = as_generator(rng)
                return rng.random(n)
        """)
        assert rules_of(findings, "RPP003") == []


class TestWorkerMutatesEngineState:
    def test_flags_lambda_mutating_self_collection(self, lint):
        findings = lint("""\
            class Engine:
                def dispatch(self, pool, runner, u):
                    pool.submit(lambda: self.evals.append(runner(u)))
        """)
        hits = rules_of(findings, "RPP004")
        assert len(hits) == 1
        assert "self.evals.append" in hits[0].message

    def test_flags_nested_worker_assigning_self_attribute(self, lint):
        findings = lint("""\
            class Engine:
                def dispatch(self, pool, runner, u):
                    def task():
                        result = runner(u)
                        self.best = result
                        return result
                    pool.submit(task)
        """)
        hits = rules_of(findings, "RPP004")
        assert len(hits) == 1
        assert "assigns self.best" in hits[0].message

    def test_flags_augmented_assignment_through_subscript(self, lint):
        findings = lint("""\
            class Engine:
                def dispatch(self, pool, runner, i):
                    def task():
                        self.counts[i] += 1
                        return runner(i)
                    pool.submit(task)
        """)
        hits = rules_of(findings, "RPP004")
        assert len(hits) == 1
        assert "self.counts" in hits[0].message

    def test_allows_pure_worker_closure(self, lint):
        findings = lint("""\
            class Engine:
                def dispatch(self, pool, runner, u, threshold):
                    pool.submit(lambda r=runner, v=u, t=threshold: r(v, t))
        """)
        assert rules_of(findings, "RPP004") == []

    def test_allows_mutation_outside_the_worker(self, lint):
        findings = lint("""\
            class Engine:
                def fold(self, pool):
                    tag, result = pool.next_completed()
                    self.evals.append(result)
        """)
        assert rules_of(findings, "RPP004") == []

    def test_suppression(self, lint):
        findings = lint("""\
            class Engine:
                def dispatch(self, pool, runner, u):
                    def task():
                        self.started.add(u)  # repro: noqa RPP004 -- lock-guarded progress set; never read by decisions
                        return runner(u)
                    pool.submit(task)
        """)
        hits = rules_of(findings, "RPP004")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []


class TestUnboundedBlockingCall:
    def test_flags_bare_queue_get(self, lint):
        findings = lint("""\
            def drain(queue):
                return queue.get()
        """)
        hits = rules_of(findings, "RPP005")
        assert len(hits) == 1
        assert ".get()" in hits[0].message

    def test_flags_future_result_and_thread_join(self, lint):
        findings = lint("""\
            def wait_all(futures, worker):
                values = [f.result() for f in futures]
                worker.join()
                return values
        """)
        assert len(rules_of(findings, "RPP005")) == 2

    def test_allows_timeout_keyword(self, lint):
        findings = lint("""\
            def drain(queue, worker):
                item = queue.get(timeout=5.0)
                worker.join(timeout=1.0)
                return item
        """)
        assert rules_of(findings, "RPP005") == []

    def test_allows_positional_overloads(self, lint):
        # dict.get(key), str.join(parts) and os.path.join(a, b) all take
        # positionals — they are lookups, not blocking waits.
        findings = lint("""\
            import os

            def lookup(table, parts, a, b):
                return (table.get("key"), ",".join(parts),
                        os.path.join(a, b))
        """)
        assert rules_of(findings, "RPP005") == []

    def test_pool_layer_exempt(self, lint):
        findings = lint("""\
            def drain(queue):
                return queue.get()
        """, rel="src/repro/utils/parallel.py")
        assert rules_of(findings, "RPP005") == []

    def test_supervise_package_exempt(self, lint):
        findings = lint("""\
            def drain(queue):
                return queue.get()
        """, rel="src/repro/supervise/supervisor.py")
        assert rules_of(findings, "RPP005") == []

    def test_out_of_tree_modules_exempt(self, lint):
        findings = lint("""\
            def drain(queue):
                return queue.get()
        """, rel="benchmarks/test_smoke.py")
        assert rules_of(findings, "RPP005") == []

    def test_suppression(self, lint):
        findings = lint("""\
            def drain(queue):
                return queue.get()  # repro: noqa RPP005 -- producer guaranteed alive by construction; bounded by test harness
        """)
        hits = rules_of(findings, "RPP005")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []
