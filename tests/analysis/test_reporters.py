"""Text/JSON reporter contracts (the JSON schema is pinned: CI consumes it)."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import (JSON_FORMAT_VERSION, render_json,
                                      render_text)

_VIOLATION = """\
import numpy as np
np.random.seed(1234)
x = np.random.rand(3)  # repro: noqa RPD001 -- fixture exercising suppression
"""


@pytest.fixture()
def report(tmp_path):
    mod = tmp_path / "src" / "repro" / "core" / "fixture_mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(_VIOLATION), encoding="utf-8")
    return analyze_paths([tmp_path / "src"])


def test_json_schema(report):
    doc = json.loads(render_json(report))
    assert set(doc) == {"version", "files_scanned", "rules", "summary",
                        "findings"}
    assert doc["version"] == JSON_FORMAT_VERSION
    assert doc["files_scanned"] == 1
    assert len(doc["rules"]) >= 10
    assert doc["summary"] == {"total": 2, "suppressed": 1, "unsuppressed": 1,
                              "baselined": 0, "active": 1}
    for finding in doc["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message",
                                "suppressed", "justification", "baselined"}
        assert isinstance(finding["line"], int) and finding["line"] >= 1
        assert isinstance(finding["col"], int) and finding["col"] >= 1
    unsuppressed = [f for f in doc["findings"] if not f["suppressed"]]
    assert unsuppressed[0]["rule"] == "RPD001"
    assert unsuppressed[0]["line"] == 2
    suppressed = [f for f in doc["findings"] if f["suppressed"]]
    assert suppressed[0]["justification"] == \
        "fixture exercising suppression"


def test_json_is_deterministic(report):
    assert render_json(report) == render_json(report)


def test_text_output(report):
    text = render_text(report)
    assert "RPD001" in text
    assert ":2:1:" in text
    # Suppressed findings are hidden by default...
    assert "fixture exercising suppression" not in text
    assert text.endswith("1 finding (1 suppressed)")
    # ...and shown on demand with their justification.
    verbose = render_text(report, show_suppressed=True)
    assert "fixture exercising suppression" in verbose


def test_exit_code_tracks_unsuppressed(report):
    assert report.exit_code == 1
