"""Fixtures for the invariant-linter tests.

``lint`` writes a snippet to a tmp file at a chosen repo-relative path
(the path matters: several rules scope by package) and returns every
finding, including suppressed ones.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import analyze_file
from repro.analysis.registry import build_rules

#: Default fixture location: a decision-path module inside src/repro.
DECISION_MODULE = "src/repro/core/fixture_mod.py"


@pytest.fixture()
def lint(tmp_path: Path):
    def _lint(source: str, rel: str = DECISION_MODULE,
              select=None, ignore=None):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        rules = build_rules(select=select, ignore=ignore)
        return analyze_file(path, rules, display=path.as_posix())
    return _lint
