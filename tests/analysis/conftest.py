"""Fixtures for the invariant-linter tests.

``lint`` writes a snippet to a tmp file at a chosen repo-relative path
(the path matters: several rules scope by package) and returns every
finding, including suppressed ones.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import analyze_file, analyze_paths
from repro.analysis.registry import build_rules

#: Default fixture location: a decision-path module inside src/repro.
DECISION_MODULE = "src/repro/core/fixture_mod.py"


@pytest.fixture()
def lint(tmp_path: Path):
    def _lint(source: str, rel: str = DECISION_MODULE,
              select=None, ignore=None):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        rules = build_rules(select=select, ignore=ignore)
        return analyze_file(path, rules, display=path.as_posix())
    return _lint


@pytest.fixture()
def lint_tree(tmp_path: Path):
    """Write a multi-file tree and run the full two-phase engine on it.

    Takes ``{repo-relative path: source}``; returns the
    :class:`~repro.analysis.engine.AnalysisReport` (whole-program rules
    included — this is the project-mode counterpart of ``lint``).
    """
    def _lint(files: dict[str, str], select=None, ignore=None, **kwargs):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return analyze_paths([tmp_path], select=select, ignore=ignore,
                             **kwargs)
    return _lint
