"""Result cache soundness and the parallel per-module phase."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.engine import analyze_paths

_VIOLATION = """\
    import numpy as np


    def sample(n):
        np.random.seed(0)
        return np.random.rand(n)
"""

_CLEAN = """\
    def sample(n, rng):
        return rng.random(n)
"""


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _keys(report):
    return [(f.rule, f.path, f.line, f.suppressed) for f in report.findings]


class TestResultCache:
    def test_warm_run_hits_and_matches_cold_run(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        _write(tmp_path, "tree/src/repro/core/b.py", _CLEAN)
        cache = tmp_path / "cache"
        cold = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        warm = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        assert warm.cache_misses == 0
        # Per-module entries for both files plus the flow entry.
        assert warm.cache_hits == 3
        assert _keys(warm) == _keys(cold)
        assert warm.exit_code == cold.exit_code == 1

    def test_editing_one_file_invalidates_it_and_the_flow_phase(
            self, tmp_path):
        a = _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        _write(tmp_path, "tree/src/repro/core/b.py", _CLEAN)
        cache = tmp_path / "cache"
        analyze_paths([tmp_path / "tree"], cache_dir=cache)
        a.write_text(textwrap.dedent(_CLEAN), encoding="utf-8")
        after = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        # b.py per-module entry still hits; a.py and the flow entry miss.
        assert after.cache_hits == 1
        assert after.cache_misses == 2
        assert after.exit_code == 0

    def test_rule_selection_changes_the_cache_key(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        cache = tmp_path / "cache"
        analyze_paths([tmp_path / "tree"], cache_dir=cache)
        narrowed = analyze_paths([tmp_path / "tree"], cache_dir=cache,
                                 select=["RPD001"])
        assert narrowed.cache_hits == 0
        assert {f.rule for f in narrowed.findings} == {"RPD001"}

    def test_corrupt_cache_entry_reads_as_miss(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        cache = tmp_path / "cache"
        cold = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        for entry in cache.iterdir():
            entry.write_text("{not json", encoding="utf-8")
        rebuilt = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        assert rebuilt.cache_hits == 0
        assert _keys(rebuilt) == _keys(cold)

    def test_cache_entries_are_valid_json_documents(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        cache = tmp_path / "cache"
        analyze_paths([tmp_path / "tree"], cache_dir=cache)
        names = sorted(p.name for p in cache.iterdir())
        assert any(n.startswith("pm_") for n in names)
        assert any(n.startswith("fl_") for n in names)
        for entry in cache.iterdir():
            doc = json.loads(entry.read_text(encoding="utf-8"))
            assert doc["version"] == 1

    def test_suppressions_survive_the_cache(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", """\
            import numpy as np

            np.random.seed(0)  # repro: noqa RPD001 -- fixture: exercising cached suppressions
        """)
        cache = tmp_path / "cache"
        cold = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        warm = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        assert warm.cache_misses == 0
        assert cold.exit_code == warm.exit_code == 0
        assert len(warm.suppressed) == len(cold.suppressed) == 1
        assert warm.suppressed[0].justification == \
            "fixture: exercising cached suppressions"

    def test_parse_error_files_cache_soundly(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/bad.py", "def broken(:\n")
        cache = tmp_path / "cache"
        cold = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        warm = analyze_paths([tmp_path / "tree"], cache_dir=cache)
        assert _keys(warm) == _keys(cold)
        assert any(f.rule == "RPA000" and "does not parse" in f.message
                   for f in warm.findings)


class TestParallelPhase:
    def test_jobs_and_serial_reports_are_identical(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        _write(tmp_path, "tree/src/repro/core/b.py", _CLEAN)
        _write(tmp_path, "tree/src/repro/exp/c.py", _VIOLATION)
        serial = analyze_paths([tmp_path / "tree"], n_jobs=1)
        fanned = analyze_paths([tmp_path / "tree"], n_jobs=2)
        assert _keys(serial) == _keys(fanned)
        assert serial.files_scanned == fanned.files_scanned

    def test_jobs_env_knob_is_honoured(self, tmp_path, monkeypatch):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        monkeypatch.setenv("ROBOTUNE_JOBS", "2")
        report = analyze_paths([tmp_path / "tree"])
        assert report.exit_code == 1
