"""RPX rule pack: whole-program seed-provenance, thread-ownership,
event-contract and resource-lifecycle rules, plus the CI gate demo."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

from lintutils import active, rules_of

#: Minimal typed catalogs: RPX003 resolves names against this module.
_EVENTS = """\
    EVENT_TYPES: dict[str, str] = {
        "eval.result": "one configuration finished evaluating",
    }

    COUNTERS = {"evals": "configurations evaluated"}

    TIMERS = {"gp.fit": "surrogate fits"}

    SPANS = {"tune": "one tuning session", "bo": "the BO loop"}
"""


class TestSeedProvenance:
    def test_fresh_rng_captured_at_submit_site(self, lint_tree):
        report = lint_tree({"src/repro/core/a.py": """\
            import numpy as np


            def run(pool):
                rng = np.random.default_rng(0)
                pool.submit(lambda r=rng: r.random())
        """}, select=["RPX001"])
        hits = rules_of(report.findings, "RPX001")
        assert len(hits) == 1
        assert "rng" in hits[0].message

    def test_cross_module_rng_flow_is_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/exp/dispatch.py": """\
                def run_batch(pool, rng):
                    pool.submit(lambda r=rng: r.random())
            """,
            "src/repro/core/driver.py": """\
                import numpy as np

                from ..exp.dispatch import run_batch


                def drive(pool):
                    rng = np.random.default_rng(0)
                    run_batch(pool, rng)
            """}, select=["RPX001"])
        hits = rules_of(report.findings, "RPX001")
        # The finding anchors at the crossing call in the *birth* module
        # (dispatch.py only sees a parameter, never a fresh stream).
        assert len(hits) == 1
        assert "driver.py" in hits[0].path
        assert "run_batch" in hits[0].message

    def test_spawned_children_are_clean(self, lint_tree):
        report = lint_tree({"src/repro/core/a.py": """\
            import numpy as np

            from ..utils.rng import spawn


            def run(pool, seed):
                rng = np.random.default_rng(seed)
                children = spawn(rng, 4)
                for child in children:
                    pool.submit(lambda r=child: r.random())
        """}, select=["RPX001"])
        assert rules_of(report.findings, "RPX001") == []

    def test_suppression_with_justification(self, lint_tree):
        report = lint_tree({"src/repro/core/a.py": """\
            import numpy as np


            def run(pool):
                rng = np.random.default_rng(0)
                pool.submit(lambda r=rng: r.random())  # repro: noqa RPX001 -- fixture: single worker, no interleaving possible
        """}, select=["RPX001"])
        hits = rules_of(report.findings, "RPX001")
        assert len(hits) == 1 and hits[0].suppressed
        assert report.exit_code == 0


class TestThreadOwnership:
    def test_worker_reachable_mutation_is_flagged(self, lint_tree):
        report = lint_tree({"src/repro/core/eng.py": """\
            class BOEngine:
                def __init__(self, pool):
                    self.pool = pool
                    self.observations = []

                def _record(self, value):
                    self.observations.append(value)

                def dispatch(self, value):
                    self.pool.submit(lambda v=value: self._record(v))
        """}, select=["RPX002"])
        hits = rules_of(report.findings, "RPX002")
        assert len(hits) == 1
        assert "BOEngine.observations" in hits[0].message
        assert "_record" in hits[0].message

    def test_mutation_reached_through_intermediate_call(self, lint_tree):
        report = lint_tree({"src/repro/core/eng.py": """\
            class EvaluationSupervisor:
                def __init__(self, pool):
                    self.pool = pool
                    self.inflight = {}

                def _note(self, key):
                    self.inflight[key] = True

                def _task(self, key):
                    self._note(key)

                def dispatch(self, key):
                    self.pool.submit(lambda k=key: self._task(k))
        """}, select=["RPX002"])
        hits = rules_of(report.findings, "RPX002")
        assert len(hits) == 1
        assert "_task" in hits[0].message

    def test_fold_on_collecting_side_is_clean(self, lint_tree):
        report = lint_tree({"src/repro/core/eng.py": """\
            class BOEngine:
                def __init__(self, pool):
                    self.pool = pool
                    self.observations = []

                def _fold_in(self, value):
                    self.observations.append(value)

                def dispatch(self, runner, value):
                    future = self.pool.submit(lambda v=value: runner(v))
                    self._fold_in(future.result())
        """}, select=["RPX002"])
        assert rules_of(report.findings, "RPX002") == []

    def test_non_owner_classes_are_out_of_scope(self, lint_tree):
        report = lint_tree({"src/repro/core/eng.py": """\
            class ScratchBuffer:
                def __init__(self, pool):
                    self.pool = pool
                    self.items = []

                def _push(self, value):
                    self.items.append(value)

                def dispatch(self, value):
                    self.pool.submit(lambda v=value: self._push(v))
        """}, select=["RPX002"])
        assert rules_of(report.findings, "RPX002") == []


class TestEventContract:
    def test_off_catalog_names_are_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/obs/events.py": _EVENTS,
            "src/repro/core/a.py": """\
                def run(tracer):
                    tracer.count("no.such.counter", 1)
                    tracer.emit("no.such.event", {})
                    with tracer.timer("no.such.timer"):
                        pass
            """}, select=["RPX003"])
        hits = active(rules_of(report.findings, "RPX003"))
        assert len(hits) == 3
        assert any("COUNTERS" in h.message for h in hits)
        assert any("EVENT_TYPES" in h.message for h in hits)
        assert any("TIMERS" in h.message for h in hits)

    def test_catalog_names_are_clean(self, lint_tree):
        report = lint_tree({
            "src/repro/obs/events.py": _EVENTS,
            "src/repro/core/a.py": """\
                def run(tracer):
                    tracer.count("evals", 1)
                    tracer.emit("eval.result", {})
                    with tracer.span("tune"):
                        with tracer.timer("gp.fit"):
                            pass
            """}, select=["RPX003"])
        assert rules_of(report.findings, "RPX003") == []

    def test_dangling_span_is_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/obs/events.py": _EVENTS,
            "src/repro/core/a.py": """\
                def run(tracer):
                    tracer.span("bo")
            """}, select=["RPX003"])
        hits = rules_of(report.findings, "RPX003")
        assert len(hits) == 1
        assert "with" in hits[0].message

    def test_non_literal_name_is_flagged(self, lint_tree):
        report = lint_tree({
            "src/repro/obs/events.py": _EVENTS,
            "src/repro/core/a.py": """\
                def run(tracer, name):
                    tracer.count(name, 1)
            """}, select=["RPX003"])
        hits = rules_of(report.findings, "RPX003")
        assert len(hits) == 1
        assert "literal" in hits[0].message

    def test_rule_is_inert_without_the_catalog_module(self, lint_tree):
        report = lint_tree({"src/repro/core/a.py": """\
            def run(tracer):
                tracer.count("no.such.counter", 1)
        """}, select=["RPX003"])
        assert rules_of(report.findings, "RPX003") == []

    def test_obs_package_itself_is_out_of_scope(self, lint_tree):
        report = lint_tree({
            "src/repro/obs/events.py": _EVENTS,
            "src/repro/obs/tracer_impl.py": """\
                def relay(tracer, name):
                    tracer.count(name, 1)
            """}, select=["RPX003"])
        assert rules_of(report.findings, "RPX003") == []


class TestResourceLifecycle:
    def test_handle_without_close_or_fsync_is_flagged(self, lint_tree):
        report = lint_tree({"src/repro/core/sink.py": """\
            class Sink:
                def start(self, path):
                    self._fh = open(path, "a")

                def write(self, line):
                    self._fh.write(line)
        """}, select=["RPX004"])
        hits = rules_of(report.findings, "RPX004")
        assert len(hits) == 1
        assert "close" in hits[0].message and "fsync" in hits[0].message

    def test_close_and_fsync_in_other_methods_clears(self, lint_tree):
        report = lint_tree({"src/repro/core/sink.py": """\
            import os


            class Sink:
                def start(self, path):
                    self._fh = open(path, "a")

                def flush(self):
                    self._fh.flush()
                    os.fsync(self._fh.fileno())

                def close(self):
                    self._fh.close()
        """}, select=["RPX004"])
        assert rules_of(report.findings, "RPX004") == []

    def test_local_handle_closed_and_fsynced_clears(self, lint_tree):
        report = lint_tree({"src/repro/core/sink.py": """\
            import os


            def dump(path, lines):
                fh = open(path, "w")
                fh.writelines(lines)
                fh.flush()
                os.fsync(fh.fileno())
                fh.close()
        """}, select=["RPX004"])
        assert rules_of(report.findings, "RPX004") == []

    def test_with_block_is_exempt(self, lint_tree):
        report = lint_tree({"src/repro/core/sink.py": """\
            def dump(path):
                with open(path, "w") as fh:
                    fh.write("x")
        """}, select=["RPX004"])
        assert rules_of(report.findings, "RPX004") == []

    def test_outside_src_repro_is_out_of_scope(self, lint_tree):
        report = lint_tree({"benchmarks/helper.py": """\
            def dump(path):
                fh = open(path, "w")
                fh.write("x")
        """}, select=["RPX004"])
        assert rules_of(report.findings, "RPX004") == []


class TestFlowRulesPerModuleContract:
    def test_flow_rules_are_inert_in_single_file_mode(self, lint):
        # analyze_file runs every rule's per-module ``check``; for flow
        # rules that is a documented no-op, so single-file consumers
        # (editor integrations, the ``lint`` fixture) never half-run an
        # interprocedural analysis.
        findings = lint("""\
            import numpy as np


            def run(pool):
                rng = np.random.default_rng(0)
                pool.submit(lambda r=rng: r.random())
        """, select=["RPX001", "RPX002", "RPX003", "RPX004"])
        assert findings == []


class TestCIGateDemo:
    def test_seeded_cross_module_seed_leak_fails_the_gate(self, tmp_path):
        """Acceptance demo: the exact CI invocation trips on a seeded
        cross-module RNG leak that no per-module rule can see."""
        files = {
            "src/repro/exp/dispatch.py": """\
                def run_batch(pool, rng):
                    pool.submit(lambda r=rng: r.random())
            """,
            "src/repro/core/driver.py": """\
                import numpy as np

                from ..exp.dispatch import run_batch


                def drive(pool):
                    rng = np.random.default_rng(0)
                    run_batch(pool, rng)
            """,
        }
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = (os.path.abspath(repo_src) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis",
             str(tmp_path / "src"), "--format", "json"],
            env=env, capture_output=True, text=True)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        doc = json.loads(proc.stdout)
        leaked = [f for f in doc["findings"]
                  if f["rule"] == "RPX001" and not f["suppressed"]]
        assert leaked, doc["findings"]
        assert any("driver.py" in f["path"] for f in leaked)
