"""RPN rule pack: true positives, true negatives, suppressions."""

from __future__ import annotations

from lintutils import active, rules_of


class TestRawFactorizationOutsideGP:
    def test_flags_cholesky_outside_gp(self, lint):
        findings = lint("""\
            import numpy as np

            def fit(K):
                return np.linalg.cholesky(K)
        """)
        hits = rules_of(findings, "RPN001")
        assert len(hits) == 1
        assert "cholesky" in hits[0].message

    def test_flags_scipy_import(self, lint):
        findings = lint("from scipy.linalg import cho_factor\n")
        assert len(rules_of(findings, "RPN001")) == 1

    def test_allows_inside_gp(self, lint):
        findings = lint("""\
            import numpy as np
            from scipy.linalg import cho_factor, cho_solve

            def fit(K):
                return np.linalg.cholesky(K)
        """, rel="src/repro/gp/fixture_mod.py")
        assert rules_of(findings, "RPN001") == []

    def test_allows_linalg_error_handling(self, lint):
        findings = lint("""\
            import numpy as np

            def f(solve):
                try:
                    return solve()
                except np.linalg.LinAlgError:
                    return None
        """)
        assert rules_of(findings, "RPN001") == []

    def test_outside_repro_package_is_exempt(self, lint):
        findings = lint("""\
            import numpy as np

            def f(K):
                return np.linalg.solve(K, K)
        """, rel="benchmarks/fixture_mod.py")
        assert rules_of(findings, "RPN001") == []


class TestFloatLiteralEquality:
    def test_flags_nonzero_float_equality(self, lint):
        findings = lint("""\
            def f(x):
                return x == 0.5
        """)
        hits = rules_of(findings, "RPN002")
        assert len(hits) == 1
        assert "0.5" in hits[0].message

    def test_flags_not_equal(self, lint):
        findings = lint("""\
            def f(x):
                if x != 1.0:
                    return x
        """)
        assert len(rules_of(findings, "RPN002")) == 1

    def test_allows_exact_zero_degenerate_check(self, lint):
        findings = lint("""\
            def f(std):
                if std == 0.0:
                    return 1.0
                return std
        """)
        assert rules_of(findings, "RPN002") == []

    def test_allows_ordering_comparisons(self, lint):
        findings = lint("""\
            def f(x):
                return x < 0.5 or x >= 1.5
        """)
        assert rules_of(findings, "RPN002") == []

    def test_suppression(self, lint):
        findings = lint("""\
            def f(x):
                return x == 0.25  # repro: noqa RPN002 -- 0.25 is exactly representable and set, never computed
        """)
        hits = rules_of(findings, "RPN002")
        assert len(hits) == 1 and hits[0].suppressed
        assert active(findings) == []


class TestUnguardedStdDenominator:
    def test_flags_division_by_raw_std(self, lint):
        findings = lint("""\
            def standardize(y):
                return (y - y.mean()) / y.std()
        """)
        hits = rules_of(findings, "RPN003")
        assert len(hits) == 1
        assert "_safe_std" in hits[0].message

    def test_flags_augmented_division(self, lint):
        findings = lint("""\
            import numpy as np

            def standardize(y):
                y /= np.asarray(y).std()
                return y
        """)
        assert len(rules_of(findings, "RPN003")) == 1

    def test_allows_guarded_helper(self, lint):
        findings = lint("""\
            def standardize(y, _safe_std):
                return (y - y.mean()) / _safe_std(y)
        """)
        assert rules_of(findings, "RPN003") == []

    def test_allows_std_outside_denominator(self, lint):
        findings = lint("""\
            def spread(y):
                return float(y.std()) / 2.0
        """)
        assert rules_of(findings, "RPN003") == []
