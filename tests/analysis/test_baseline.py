"""Baseline snapshots: grandfather existing findings, gate new ones."""

from __future__ import annotations

import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis.baseline import (apply_baseline, finding_key,
                                     load_baseline, write_baseline)
from repro.analysis.cli import main
from repro.analysis.engine import analyze_paths
from repro.analysis.findings import Finding

_VIOLATION = """\
    import numpy as np


    def sample(n):
        np.random.seed(0)
        return np.random.rand(n)
"""


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestRoundTrip:
    def test_write_then_compare_turns_the_run_green(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        snapshot = tmp_path / "baseline.json"
        before = analyze_paths([tmp_path / "tree"])
        assert before.exit_code == 1
        count = write_baseline(before.findings, snapshot)
        assert count == len(before.unsuppressed)
        after = analyze_paths([tmp_path / "tree"], baseline=snapshot)
        assert after.exit_code == 0
        assert len(after.baselined) == count
        # Findings are still reported, just not failing.
        assert len(after.findings) == len(before.findings)

    def test_new_violation_still_fails(self, tmp_path):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        snapshot = tmp_path / "baseline.json"
        write_baseline(analyze_paths([tmp_path / "tree"]).findings, snapshot)
        _write(tmp_path, "tree/src/repro/core/b.py", _VIOLATION)
        report = analyze_paths([tmp_path / "tree"], baseline=snapshot)
        assert report.exit_code == 1
        assert all("b.py" in f.path for f in report.active)

    def test_counts_match_per_occurrence(self):
        finding = Finding(rule="RPD001", path="src/repro/core/a.py",
                          line=3, col=1, message="np.random.seed call")
        twin = Finding(rule="RPD001", path="src/repro/core/a.py",
                       line=9, col=1, message="np.random.seed call")
        counts = Counter({finding_key(finding): 1})
        marked = apply_baseline([finding, twin], counts)
        assert [f.baselined for f in marked] == [True, False]

    def test_suppressed_findings_do_not_consume_entries(self):
        finding = Finding(rule="RPD001", path="p.py", line=3, col=1,
                          message="m")
        suppressed = finding.suppress("justified")
        counts = Counter({finding_key(finding): 1})
        marked = apply_baseline([suppressed, finding], counts)
        assert not marked[0].baselined
        assert marked[1].baselined

    def test_malformed_baseline_is_a_value_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "entries": {}}),
                       encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCLIFlags:
    def test_write_then_compare_via_cli(self, tmp_path, capsys):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        snapshot = tmp_path / "baseline.json"
        tree = str(tmp_path / "tree")
        assert main([tree, "--write-baseline", str(snapshot)]) == 0
        assert "baseline written" in capsys.readouterr().out
        assert main([tree, "--baseline", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "(baselined)" in out
        assert main([tree]) == 1
        capsys.readouterr()

    def test_baseline_and_write_baseline_are_mutually_exclusive(
            self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([str(tmp_path), "--baseline", "x.json",
                  "--write-baseline", "y.json"])
        capsys.readouterr()

    def test_missing_baseline_file_is_usage_error(self, tmp_path, capsys):
        _write(tmp_path, "tree/src/repro/core/a.py", _VIOLATION)
        assert main([str(tmp_path / "tree"),
                     "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
