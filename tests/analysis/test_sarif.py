"""SARIF v2.1.0 reporter: the code-scanning upload format."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import SARIF_SCHEMA, render_sarif

_VIOLATION = """\
import numpy as np
np.random.seed(1234)
x = np.random.rand(3)  # repro: noqa RPD001 -- fixture exercising suppression
"""


@pytest.fixture()
def report(tmp_path):
    mod = tmp_path / "src" / "repro" / "core" / "fixture_mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(textwrap.dedent(_VIOLATION), encoding="utf-8")
    return analyze_paths([tmp_path / "src"])


def test_document_envelope(report):
    doc = json.loads(render_sarif(report))
    assert doc["$schema"] == SARIF_SCHEMA
    assert doc["version"] == "2.1.0"
    assert len(doc["runs"]) == 1


def test_driver_carries_the_rule_catalog(report):
    driver = json.loads(render_sarif(report))["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    ids = [r["id"] for r in driver["rules"]]
    assert ids == sorted(ids)
    assert {"RPD001", "RPX001", "RPX002", "RPX003", "RPX004"} <= set(ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]


def test_results_carry_locations_and_rule_index(report):
    doc = json.loads(render_sarif(report))
    driver = doc["runs"][0]["tool"]["driver"]
    results = doc["runs"][0]["results"]
    assert len(results) == len(report.findings)
    for result in results:
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("fixture_mod.py")
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]


def test_suppressed_findings_become_notes_with_justification(report):
    results = json.loads(render_sarif(report))["runs"][0]["results"]
    suppressed = [r for r in results if "suppressions" in r]
    assert len(suppressed) == 1
    entry = suppressed[0]["suppressions"][0]
    assert suppressed[0]["level"] == "note"
    assert entry["kind"] == "inSource"
    assert entry["justification"] == "fixture exercising suppression"
    unsuppressed = [r for r in results if "suppressions" not in r]
    assert all(r["level"] == "error" for r in unsuppressed)


def test_baselined_findings_carry_external_suppressions(tmp_path):
    mod = tmp_path / "src" / "repro" / "core" / "fixture_mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("import numpy as np\nnp.random.seed(1)\n",
                   encoding="utf-8")
    from repro.analysis.baseline import write_baseline
    first = analyze_paths([tmp_path / "src"])
    snapshot = tmp_path / "baseline.json"
    write_baseline(first.findings, snapshot)
    second = analyze_paths([tmp_path / "src"], baseline=snapshot)
    results = json.loads(render_sarif(second))["runs"][0]["results"]
    kinds = [s["kind"] for r in results for s in r.get("suppressions", ())]
    assert kinds == ["external"]


def test_sarif_is_deterministic(report):
    assert render_sarif(report) == render_sarif(report)
