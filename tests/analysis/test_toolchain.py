"""External toolchain gates (ruff, mypy): run them when available.

The CI static-analysis job installs pinned versions and runs both; the
offline dev container may not ship them, so these tests skip rather
than fail when the tool is missing.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _module_available(name: str) -> bool:
    return shutil.which(name) is not None or \
        subprocess.run([sys.executable, "-m", name, "--version"],
                       capture_output=True).returncode == 0


@pytest.mark.skipif(not _module_available("ruff"),
                    reason="ruff not installed in this environment")
def test_ruff_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _module_available("mypy"),
                    reason="mypy not installed in this environment")
def test_mypy_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
