"""Tests for the three baseline tuners on the synthetic objective."""

import numpy as np
import pytest

from repro.sparksim import RunStatus
from repro.tuners import (BestConfig, Gunther, RandomSearch,
                          SyntheticObjective, synthetic_space)


def make_objective(seed=0, dim=8, **kw):
    return SyntheticObjective(synthetic_space(dim), n_effective=3, rng=seed,
                              name="synth", **kw)


class TestRandomSearch:
    def test_spends_full_budget(self):
        result = RandomSearch().tune(make_objective(1), 30, rng=2)
        assert result.n_evaluations == 30
        assert result.tuner == "RandomSearch"
        assert result.workload == "synth/D1"

    def test_finds_decent_point_with_enough_budget(self):
        result = RandomSearch().tune(make_objective(3), 200, rng=4)
        assert result.best_time_s < 40.0

    def test_deterministic_given_seed(self):
        a = RandomSearch().tune(make_objective(5), 20, rng=6)
        b = RandomSearch().tune(make_objective(5), 20, rng=6)
        assert a.best_time_s == b.best_time_s

    def test_static_threshold_truncates(self):
        tuner = RandomSearch(static_threshold_s=12.0)
        result = tuner.tune(make_objective(7), 40, rng=8)
        assert all(e.cost_s <= 12.0 + 1e-9 for e in result.evaluations)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RandomSearch().tune(make_objective(), 0)


class TestBestConfig:
    def test_single_round_with_default_sample_size(self):
        """Budget 100 with round_size 100 -> pure DDS, no recursion."""
        result = BestConfig().tune(make_objective(9), 50, rng=10)
        assert result.n_evaluations == 50

    def test_recursive_rounds_shrink_bounds(self):
        tuner = BestConfig(round_size=15)
        result = tuner.tune(make_objective(11), 60, rng=12)
        assert result.n_evaluations == 60
        # Later rounds concentrate: spread of the last round's points is
        # smaller than the first round's.
        first = np.vstack([e.vector for e in result.evaluations[:15]])
        last = np.vstack([e.vector for e in result.evaluations[-15:]])
        assert last.std(axis=0).mean() < first.std(axis=0).mean()

    def test_recursion_improves_over_first_round(self):
        tuner = BestConfig(round_size=15)
        result = tuner.tune(make_objective(13), 75, rng=14)
        first_best = min(e.objective for e in result.evaluations[:15])
        assert result.best_time_s <= first_best

    def test_adaptive_threshold_engages(self):
        tuner = BestConfig(round_size=10, threshold_scale=2.0)
        obj = make_objective(15, base=10.0, scale=400.0)
        result = tuner.tune(obj, 40, rng=16)
        assert any(e.truncated for e in result.evaluations) or \
            all(e.ok for e in result.evaluations)

    def test_validation(self):
        with pytest.raises(ValueError):
            BestConfig(round_size=1)
        with pytest.raises(ValueError):
            BestConfig(threshold_scale=1.0)


class TestGunther:
    def test_spends_exact_budget(self):
        result = Gunther().tune(make_objective(17), 45, rng=18)
        assert result.n_evaluations == 45

    def test_population_rule_scales_with_dim(self):
        g = Gunther()
        assert g._population_size(6, 1000) == 8 + 12
        assert g._population_size(44, 1000) == 8 + 88
        # Capped at half the budget so evolution actually happens.
        assert g._population_size(44, 40) == 20

    def test_later_generations_beat_initials(self):
        result = Gunther(population=12).tune(make_objective(19), 60, rng=20)
        init_best = min(e.objective for e in result.evaluations[:12])
        later = min(e.objective for e in result.evaluations[12:])
        assert later <= init_best * 1.1

    def test_children_stay_in_unit_cube(self):
        result = Gunther(population=10, mutation_rate=0.9,
                         mutation_sigma=0.5).tune(make_objective(21), 40,
                                                  rng=22)
        for e in result.evaluations:
            assert np.all(e.vector >= 0.0) and np.all(e.vector <= 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gunther(population=2)
        with pytest.raises(ValueError):
            Gunther(survivor_fraction=1.5)
        with pytest.raises(ValueError):
            Gunther(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            Gunther(mutation_sigma=0.0)


class TestComparability:
    def test_all_tuners_handle_failing_regions(self):
        """Objectives where part of the space 'fails' must not crash."""
        obj_kw = dict(base=300.0, scale=2000.0, time_limit_s=480.0)
        for tuner in (RandomSearch(), BestConfig(round_size=20),
                      Gunther(population=10)):
            obj = make_objective(23, **obj_kw)
            result = tuner.tune(obj, 30, rng=24)
            assert result.n_evaluations == 30
            statuses = {e.status for e in result.evaluations}
            assert RunStatus.SUCCESS in statuses
