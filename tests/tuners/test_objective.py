"""Tests for the workload objective wrapper."""

import numpy as np
import pytest

from repro.space import spark_space
from repro.sparksim import RunStatus
from repro.tuners import WorkloadObjective
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def space():
    return spark_space()


def make_objective(space, seed=0, **kw):
    wl = get_workload("pagerank", "D1")
    return WorkloadObjective(wl, space, rng=seed, **kw)


GOOD = {
    "spark.executor.cores": 8,
    "spark.executor.memory": 24 * 1024,
    "spark.executor.instances": 15,
}


class TestEvaluation:
    def test_successful_evaluation(self, space):
        obj = make_objective(space)
        u = space.encode(GOOD)
        ev = obj(u)
        assert ev.ok
        assert ev.objective == pytest.approx(ev.cost_s)
        assert ev.config["spark.executor.cores"] == 8
        assert obj.n_evaluations == 1

    def test_failed_run_censored(self, space):
        obj = make_objective(space)
        u = space.encode({})  # Spark defaults: PR OOMs
        ev = obj(u)
        assert ev.status is RunStatus.OOM
        assert ev.objective == obj.time_limit_s      # censored for the model
        assert ev.cost_s < obj.time_limit_s          # but cheap in wall time

    def test_per_call_threshold_tightens_only(self, space):
        obj = make_objective(space, time_limit_s=100.0)
        u = space.encode(GOOD)
        ev = obj(u, time_limit_s=1.0)
        assert ev.truncated
        assert ev.cost_s == 1.0
        # A looser per-call limit cannot exceed the static cap.
        ev2 = obj(u, time_limit_s=10_000.0)
        assert ev2.cost_s <= 100.0

    def test_noise_across_evaluations(self, space):
        obj = make_objective(space, seed=1)
        u = space.encode(GOOD)
        times = {obj(u).objective for _ in range(4)}
        assert len(times) == 4  # i.i.d. noise per evaluation


class TestCensoringPolicy:
    """Truncated runs censor at the enforced limit; hard failures at the
    full cap (see the module docstring for why the distinction matters)."""

    def test_guard_killed_run_censored_at_tightened_limit(self, space):
        obj = make_objective(space, time_limit_s=480.0)
        ev = obj(space.encode(GOOD), time_limit_s=30.0)
        assert ev.truncated and ev.status is RunStatus.TIMEOUT
        # Known only to be "at least 30 s bad" — NOT 480 s bad.
        assert ev.objective == 30.0
        assert ev.cost_s == 30.0

    def test_cap_killed_run_censored_at_cap(self, space):
        obj = make_objective(space, time_limit_s=5.0)
        ev = obj(space.encode(GOOD))
        assert ev.truncated
        assert ev.objective == 5.0

    def test_hard_failure_censored_at_full_cap(self, space):
        obj = make_objective(space, time_limit_s=480.0)
        ev = obj(space.encode({}), time_limit_s=30.0)  # PR defaults OOM
        assert ev.status is RunStatus.OOM and not ev.truncated
        # Broken, not slow: censored at the full cap even though the
        # per-call limit was tighter.
        assert ev.objective == 480.0

    def test_truncated_censoring_respects_metric(self, space):
        obj = make_objective(space, metric="core_seconds")
        ev = obj(space.encode(GOOD), time_limit_s=30.0)
        cores = GOOD["spark.executor.cores"] * GOOD["spark.executor.instances"]
        assert ev.objective == pytest.approx(30.0 * cores)


class TestResilienceHooks:
    def test_metric_value_matches_metric(self, space):
        obj = make_objective(space, metric="core_seconds")
        cores = GOOD["spark.executor.cores"] * GOOD["spark.executor.instances"]
        assert obj.metric_value(100.0, GOOD) == pytest.approx(100.0 * cores)

    def test_censor_value_default_and_explicit_limit(self, space):
        obj = make_objective(space, time_limit_s=480.0)
        assert obj.censor_value(GOOD) == 480.0
        assert obj.censor_value(GOOD, 90.0) == 90.0

    def test_rng_state_round_trip_reproduces_noise(self, space):
        obj = make_objective(space, seed=3)
        u = space.encode(GOOD)
        state = obj.rng_state()
        first = obj(u).objective
        assert obj(u).objective != first     # stream advanced
        obj.set_rng_state(state)
        assert obj(u).objective == first     # bit-identical replay


class TestWithSpace:
    def test_shares_counter_and_simulator(self, space):
        obj = make_objective(space)
        sub = space.subspace(["spark.executor.cores",
                              "spark.executor.memory"], base=GOOD)
        obj2 = obj.with_space(sub)
        assert obj2.simulator is obj.simulator
        obj2(np.array([0.5, 0.9]))
        assert obj.n_evaluations == 1

    def test_reduced_vector_decodes_with_base(self, space):
        obj = make_objective(space)
        sub = space.subspace(["spark.executor.cores"], base=GOOD)
        ev = obj.with_space(sub)(np.array([0.5]))
        assert ev.config["spark.executor.memory"] == GOOD["spark.executor.memory"]

    def test_simulator_and_cluster_exclusive(self, space):
        from repro.sparksim import ClusterSpec, SparkSimulator
        with pytest.raises(ValueError):
            WorkloadObjective(get_workload("pagerank", "D1"), space,
                              simulator=SparkSimulator(),
                              cluster=ClusterSpec())


class TestAlternativeMetrics:
    def test_core_seconds_metric(self, space):
        obj = make_objective(space, metric="core_seconds")
        u = space.encode(GOOD)
        ev = obj(u)
        cores = GOOD["spark.executor.cores"] * GOOD["spark.executor.instances"]
        assert ev.objective == pytest.approx(ev.cost_s * cores)

    def test_core_seconds_prefers_smaller_allocations(self, space):
        """The cost metric penalizes the big allocation that the time
        metric rewards."""
        big = dict(GOOD, **{"spark.executor.instances": 40})
        small = dict(GOOD, **{"spark.executor.instances": 8})
        obj = make_objective(space, seed=5, metric="core_seconds")
        cost_big = obj(space.encode(big)).objective
        cost_small = obj(space.encode(small)).objective
        assert cost_small < cost_big

    def test_custom_callable_metric(self, space):
        obj = make_objective(space, metric=lambda t, conf: t * 2.0)
        u = space.encode(GOOD)
        ev = obj(u)
        assert ev.objective == pytest.approx(ev.cost_s * 2.0)

    def test_unknown_metric_rejected(self, space):
        with pytest.raises(KeyError):
            make_objective(space, metric="latency_p99")

    def test_censored_failures_use_cap_metric(self, space):
        obj = make_objective(space, metric="core_seconds")
        ev = obj(space.encode({}))  # defaults OOM on PageRank
        assert not ev.ok
        cores = 1 * 5  # default cores x instances
        assert ev.objective == pytest.approx(obj.time_limit_s * cores)


class TestEvaluateBatch:
    """``evaluate_batch`` must equal the spawn_view-per-point loop exactly."""

    def _vectors(self, space, n, seed):
        rng = np.random.default_rng(seed)
        return [rng.random(space.dim) for _ in range(n)]

    def test_bit_identical_to_spawn_view_loop(self, space):
        obj_a = make_objective(space, seed=5)
        obj_b = make_objective(space, seed=5)
        U = self._vectors(space, 8, seed=6)
        batch = obj_a.evaluate_batch(U)
        serial = [obj_b.spawn_view()(u) for u in U]
        assert len(batch) == len(serial)
        for b, s in zip(batch, serial):
            assert b.vector.tobytes() == s.vector.tobytes()
            assert b.objective == s.objective  # bit-identical, not approx
            assert b.cost_s == s.cost_s
            assert b.status == s.status
            assert b.config == s.config

    def test_counter_and_parent_rng_advance_identically(self, space):
        obj_a = make_objective(space, seed=7)
        obj_b = make_objective(space, seed=7)
        U = self._vectors(space, 5, seed=8)
        obj_a.evaluate_batch(U)
        for u in U:
            obj_b.spawn_view()(u)
        assert obj_a.n_evaluations == obj_b.n_evaluations == 5
        # Parent streams consumed identically: the next spawn matches.
        assert obj_a.spawn_view()(U[0]).objective == \
            obj_b.spawn_view()(U[0]).objective

    def test_time_limit_censoring_matches(self, space):
        obj_a = make_objective(space, seed=9, time_limit_s=100.0)
        obj_b = make_objective(space, seed=9, time_limit_s=100.0)
        U = self._vectors(space, 6, seed=10)
        batch = obj_a.evaluate_batch(U, time_limit_s=1.0)
        serial = [obj_b.spawn_view()(u, 1.0) for u in U]
        for b, s in zip(batch, serial):
            assert b.objective == s.objective
            assert b.truncated == s.truncated

    def test_empty_batch(self, space):
        obj = make_objective(space, seed=11)
        assert obj.evaluate_batch([]) == []
        assert obj.n_evaluations == 0
