"""Tests for TuningResult bookkeeping."""

import numpy as np
import pytest

from repro.sparksim import RunStatus
from repro.tuners import Evaluation, TuningResult


def ev(objective, status=RunStatus.SUCCESS, cost=None):
    return Evaluation(vector=np.zeros(2), config={}, objective=objective,
                      cost_s=cost if cost is not None else objective,
                      status=status)


class TestBestTracking:
    def test_best_ignores_failures(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(5.0, RunStatus.OOM, cost=3.0),
            ev(50.0),
            ev(20.0),
        ])
        assert result.best_index == 2
        assert result.best_time_s == 20.0

    def test_no_success_raises(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(480.0, RunStatus.OOM, cost=10.0)])
        with pytest.raises(RuntimeError):
            result.best_index

    def test_ties_keep_first(self):
        result = TuningResult(tuner="t", workload="w",
                              evaluations=[ev(10.0), ev(10.0)])
        assert result.best_index == 0


class TestSearchCost:
    def test_sums_costs_not_objectives(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(480.0, RunStatus.OOM, cost=30.0),
            ev(100.0),
        ])
        assert result.search_cost_s == pytest.approx(130.0)

    def test_selection_cost_separate(self):
        result = TuningResult(tuner="t", workload="w",
                              evaluations=[ev(10.0)],
                              selection_cost_s=999.0)
        assert result.search_cost_s == pytest.approx(10.0)


class TestCurves:
    def test_best_curve_monotone_nonincreasing(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(30.0), ev(50.0), ev(20.0), ev(40.0)])
        curve = result.best_curve()
        np.testing.assert_allclose(curve, [30.0, 30.0, 20.0, 20.0])

    def test_curve_inf_before_first_success(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(480.0, RunStatus.OOM, cost=5.0), ev(25.0)])
        curve = result.best_curve()
        assert np.isinf(curve[0])
        assert curve[1] == 25.0

    def test_iterations_to_within(self):
        result = TuningResult(tuner="t", workload="w", evaluations=[
            ev(100.0), ev(22.0), ev(30.0), ev(20.0)])
        assert result.iterations_to_within(0.0) == 4
        assert result.iterations_to_within(0.10) == 2
        assert result.iterations_to_within(5.0) == 1

    def test_iterations_to_within_validation(self):
        result = TuningResult(tuner="t", workload="w",
                              evaluations=[ev(10.0)])
        with pytest.raises(ValueError):
            result.iterations_to_within(-0.1)
