"""Tests for the synthetic benchmark objective."""

import numpy as np
import pytest

from repro.sparksim import RunStatus
from repro.tuners import SyntheticObjective, synthetic_space


class TestSurface:
    def test_optimum_location(self):
        space = synthetic_space(5)
        obj = SyntheticObjective(space, n_effective=2, optimum=0.3,
                                 noise=0.0, rng=0)
        at_opt = obj.true_value({f"x{i}": 0.3 for i in range(5)})
        away = obj.true_value({"x0": 0.9, "x1": 0.9, "x2": 0.3,
                               "x3": 0.3, "x4": 0.3})
        assert at_opt == pytest.approx(obj.base)
        assert away > at_opt

    def test_inert_dimensions_do_not_matter(self):
        space = synthetic_space(6)
        obj = SyntheticObjective(space, n_effective=2, noise=0.0, rng=0)
        a = obj.true_value({f"x{i}": 0.3 for i in range(6)})
        moved = {f"x{i}": 0.3 for i in range(6)}
        moved["x5"] = 0.99
        assert obj.true_value(moved) == pytest.approx(a)

    def test_noise_multiplicative(self):
        space = synthetic_space(3)
        obj = SyntheticObjective(space, n_effective=1, noise=0.1, rng=1)
        u = np.full(3, 0.3)
        vals = [obj(u).objective for _ in range(10)]
        assert len(set(vals)) == 10
        assert min(vals) > obj.base * 0.5

    def test_kill_threshold_truncates(self):
        space = synthetic_space(3)
        obj = SyntheticObjective(space, n_effective=1, base=100.0,
                                 scale=0.0, noise=0.0, rng=0)
        ev = obj(np.full(3, 0.5), time_limit_s=50.0)
        assert ev.truncated
        assert ev.status is RunStatus.TIMEOUT
        assert ev.cost_s == 50.0
        assert ev.objective == obj.time_limit_s


class TestProtocol:
    def test_with_space_shares_surface(self):
        space = synthetic_space(4)
        obj = SyntheticObjective(space, n_effective=2, noise=0.0, rng=0)
        sub = space.subspace(["x0", "x1"],
                             base={"x2": 0.3, "x3": 0.3})
        ev = obj.with_space(sub)(np.array([0.3, 0.3]))
        # Snap error of FloatParameter is zero, so this hits the optimum.
        assert ev.objective == pytest.approx(obj.base, rel=0.01)

    def test_identity_optional(self):
        anonymous = SyntheticObjective(synthetic_space(3), rng=0)
        named = SyntheticObjective(synthetic_space(3), rng=0, name="wl",
                                   dataset="D2")
        assert not hasattr(anonymous, "workload")
        assert named.workload.key == "wl"
        assert named.workload.full_key == "wl/D2"
        assert named.workload.dataset.label == "D2"

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticObjective(synthetic_space(3), n_effective=9)
