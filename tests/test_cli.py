"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestWorkloads:
    def test_lists_table1(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for ab in ("PR", "KM", "CC", "LR", "TS"):
            assert ab in out
        assert "million pages" in out


class TestSimulate:
    def test_good_config_succeeds(self, capsys):
        code = main(["simulate", "--workload", "terasort",
                     "--set", "spark.executor.cores=8",
                     "--set", "spark.executor.memory=24576",
                     "--set", "spark.executor.instances=15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "success" in out
        assert "dominant bottleneck" in out

    def test_default_config_failure_exit_code(self, capsys):
        code = main(["simulate", "--workload", "pagerank"])
        out = capsys.readouterr().out
        assert code == 1
        assert "oom" in out

    def test_malformed_set_rejected(self, capsys):
        code = main(["simulate", "--set", "not-a-pair"])
        assert code == 2

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            main(["simulate", "--set", "spark.bogus=1"])

    def test_conf_file_round_trip(self, tmp_path, capsys):
        conf = tmp_path / "spark-defaults.conf"
        conf.write_text("spark.executor.cores 8\n"
                        "spark.executor.memory 24576m\n"
                        "spark.executor.instances 15\n"
                        "spark.shuffle.compress true\n")
        code = main(["simulate", "--workload", "terasort",
                     "--conf", str(conf)])
        assert code == 0

    def test_boolean_and_categorical_coercion(self, capsys):
        code = main(["simulate", "--workload", "terasort",
                     "--set", "spark.executor.cores=8",
                     "--set", "spark.executor.memory=24576",
                     "--set", "spark.executor.instances=15",
                     "--set", "spark.shuffle.compress=false",
                     "--set", "spark.io.compression.codec=zstd"])
        assert code == 0


class TestTune:
    def test_tune_small_budget(self, capsys, tmp_path):
        conf_out = tmp_path / "best.conf"
        code = main(["tune", "--workload", "terasort", "--budget", "25",
                     "--seed", "1", "--emit-conf", str(conf_out),
                     "--store-dir", str(tmp_path / "stores")])
        out = capsys.readouterr().out
        assert code == 0
        assert "best objective" in out
        assert conf_out.exists()
        assert (tmp_path / "stores" / "selection_cache.json").exists()
        # The emitted file parses back as a full 44-parameter config.
        lines = [ln for ln in conf_out.read_text().splitlines() if ln]
        assert len(lines) == 44

    def test_tune_core_seconds_metric(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "20",
                     "--seed", "2", "--metric", "core_seconds"])
        assert code == 0
        assert "core_seconds" in capsys.readouterr().out

    def test_tune_async_workers(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "20",
                     "--seed", "3", "--async-workers", "2"])
        assert code == 0
        assert "best objective" in capsys.readouterr().out

    def test_negative_async_workers_rejected(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--async-workers", "-2"])
        assert code == 2
        assert "--async-workers" in capsys.readouterr().err

    def test_async_workers_and_batch_exclusive(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--async-workers", "2", "--batch", "4"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_ratios(self, capsys):
        code = main(["compare", "--workload", "terasort", "--budget", "15",
                     "--trials", "1", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best/RS" in out
        for tuner in ("ROBOTune", "BestConfig", "Gunther", "RandomSearch"):
            assert tuner in out


class TestImportance:
    def test_importance_table(self, capsys):
        code = main(["importance", "--workload", "terasort",
                     "--samples", "40", "--top", "5", "--seed", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MDA importance" in out


class TestResilienceFlags:
    def test_faults_rate_out_of_range_rejected(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--faults", "1.5"])
        assert code == 2
        assert "--faults" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--retries", "-1"])
        assert code == 2
        assert "--retries" in capsys.readouterr().err

    def test_resume_requires_journal_flag(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--resume"])
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_resume_requires_existing_journal(self, capsys, tmp_path):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--journal", str(tmp_path / "absent.jsonl"),
                     "--resume"])
        assert code == 2
        assert "existing journal" in capsys.readouterr().err

    def test_fresh_journal_refuses_existing_session(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        journal.write_text('{"kind": "meta"}\n')
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--journal", str(journal)])
        assert code == 2
        assert "already holds a session" in capsys.readouterr().err

    def test_tune_with_faults_and_journal(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        code = main(["tune", "--workload", "terasort", "--budget", "10",
                     "--seed", "5", "--faults", "0.2",
                     "--journal", str(journal)])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults:" in out
        assert "journal:" in out
        assert journal.exists()

    def test_compare_accepts_fault_flags(self, capsys):
        code = main(["compare", "--workload", "terasort", "--budget", "8",
                     "--trials", "1", "--seed", "3", "--faults", "0.1",
                     "--retries", "1"])
        assert code == 0


class TestSupervisionFlags:
    def test_nonpositive_eval_timeout_rejected(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--async-workers", "2", "--eval-timeout", "0"])
        assert code == 2
        assert "--eval-timeout" in capsys.readouterr().err

    def test_eval_timeout_requires_async_workers(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--eval-timeout", "30"])
        assert code == 2
        assert "--eval-timeout requires --async-workers" in \
            capsys.readouterr().err

    def test_speculate_requires_eval_timeout(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--async-workers", "2", "--speculate"])
        assert code == 2
        assert "--speculate requires --eval-timeout" in \
            capsys.readouterr().err

    def test_bad_quarantine_threshold_rejected(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--async-workers", "2", "--eval-timeout", "30",
                     "--quarantine-after", "0"])
        assert code == 2
        assert "--quarantine-after" in capsys.readouterr().err

    def test_supervised_tune_runs(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "12",
                     "--seed", "6", "--async-workers", "2",
                     "--eval-timeout", "30", "--speculate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "supervised:      deadline 30s" in out
        assert "speculative twins" in out
        assert "0 config(s) quarantined" in out

    def test_recover_flag_accepted_on_resume(self, capsys, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert main(["tune", "--workload", "terasort", "--budget", "8",
                     "--seed", "7", "--journal", str(journal)]) == 0
        capsys.readouterr()
        code = main(["tune", "--workload", "terasort", "--budget", "8",
                     "--seed", "7", "--journal", str(journal),
                     "--resume", "--recover", "censor"])
        assert code == 0
        assert "journal:" in capsys.readouterr().out

    def test_bad_recover_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "--workload", "terasort", "--budget", "5",
                  "--recover", "retry"])


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
