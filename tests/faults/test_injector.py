"""Tests for the fault injector's outcome semantics and retry accounting."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.sparksim import RunStatus
from repro.tuners.base import Evaluation

DURATION = 100.0
LIMIT = 480.0


class StubObjective:
    """Deterministic objective: every run takes DURATION seconds.

    Deliberately omits the ``metric_value`` / ``censor_value`` hooks so
    the injector's proportional-scaling and limit fallbacks are the paths
    under test (the exact hooks are covered in test_objective.py).
    """

    def __init__(self, status=RunStatus.SUCCESS, duration_s=DURATION,
                 time_limit_s=LIMIT):
        self._status = status
        self._duration = duration_s
        self._limit = time_limit_s
        self._shared = {"calls": 0}

    @property
    def space(self):
        return None

    @property
    def time_limit_s(self):
        return self._limit

    def with_space(self, space):
        clone = object.__new__(StubObjective)
        clone.__dict__ = dict(self.__dict__)
        return clone

    @property
    def calls(self):
        return self._shared["calls"]

    def __call__(self, u, time_limit_s=None):
        self._shared["calls"] += 1
        ok = self._status is RunStatus.SUCCESS
        return Evaluation(
            vector=np.asarray(u, dtype=float),
            config={"p": 1},
            objective=self._duration if ok else self._limit,
            cost_s=self._duration if ok else 10.0,
            status=self._status,
        )


U = np.array([0.5])


def first_index(plan, pred, attempts=(0,)):
    """Smallest evaluation index whose draws satisfy *pred* per attempt."""
    for i in range(2000):
        if all(pred(plan.draw(i, a), a) for a in attempts):
            return i
    raise AssertionError("no index found in 2000 draws")


class TestPassThrough:
    def test_rate_zero_is_identity(self):
        stub = StubObjective()
        inj = FaultInjector(stub, FaultPlan(0.0), retry=RetryPolicy())
        ev = inj(U)
        assert ev.ok and ev.objective == DURATION and ev.cost_s == DURATION
        assert not ev.transient and ev.fault is None and ev.attempts == 1
        assert inj.stats == {"index": 1, "injected": 0, "transient": 0,
                             "retries": 0, "backoff_s": 0.0}

    def test_config_caused_failure_dominates_fault(self):
        # Even with a guaranteed fault, a run the configuration itself
        # kills is surfaced untouched: the model must see the bad region.
        stub = StubObjective(status=RunStatus.OOM)
        inj = FaultInjector(stub, FaultPlan(1.0, seed=1))
        ev = inj(U)
        assert ev.status is RunStatus.OOM
        assert not ev.transient and ev.fault is None
        assert ev.objective == LIMIT and ev.cost_s == 10.0
        assert inj.stats["transient"] == 0

    def test_delegates_objective_attributes(self):
        stub = StubObjective()
        inj = FaultInjector(stub, FaultPlan(0.0))
        assert inj.time_limit_s == LIMIT
        assert inj.calls == 0      # __getattr__ delegation


class TestAbort:
    def test_aborting_fault_is_transient_censored(self):
        plan = FaultPlan(1.0, seed=2, kinds=(("spurious_failure", 1.0),))
        inj = FaultInjector(StubObjective(), plan)   # no retry
        event = plan.draw(0)
        ev = inj(U)
        assert ev.status is RunStatus.RUNTIME_ERROR
        assert ev.transient and ev.fault == "spurious_failure"
        assert not ev.truncated
        # Only the elapsed fraction of the natural run is charged; the
        # objective is censored at the full cap (limit fallback).
        assert ev.cost_s == pytest.approx(DURATION * event.abort_fraction)
        assert ev.objective == LIMIT
        assert inj.stats["transient"] == 1


class TestSlowdown:
    def test_surviving_slowdown_is_plain_noise(self):
        plan = FaultPlan(1.0, seed=2, kinds=(("straggler_node", 1.0),))
        inj = FaultInjector(StubObjective(), plan)
        event = plan.draw(0)
        ev = inj(U)
        assert ev.ok and not ev.transient
        assert ev.fault == "straggler_node"
        assert ev.cost_s == pytest.approx(DURATION * event.slowdown)
        # Proportional fallback: objective scales with the stretch.
        assert ev.objective == pytest.approx(DURATION * event.slowdown)

    def test_slowdown_past_cap_becomes_transient_timeout(self):
        plan = FaultPlan(1.0, seed=2, kinds=(("straggler_node", 1.0),))
        # Slowdowns are >= 1.5x, so a 400 s run always crosses the cap.
        inj = FaultInjector(StubObjective(duration_s=400.0), plan)
        ev = inj(U)
        assert ev.status is RunStatus.TIMEOUT
        assert ev.transient and ev.truncated
        assert ev.cost_s == LIMIT and ev.objective == LIMIT

    def test_slowdown_respects_tightened_per_call_limit(self):
        plan = FaultPlan(1.0, seed=2, kinds=(("straggler_node", 1.0),))
        inj = FaultInjector(StubObjective(), plan)
        ev = inj(U, time_limit_s=120.0)    # guard-tightened below 1.5x100
        assert ev.status is RunStatus.TIMEOUT and ev.transient
        assert ev.cost_s == 120.0 and ev.objective == 120.0


class TestRetry:
    def test_transient_retried_to_success(self):
        plan = FaultPlan(0.6, seed=7, kinds=(("spurious_failure", 1.0),))
        idx = first_index(
            plan,
            lambda e, a: (e is not None and e.aborts) if a == 0 else e is None,
            attempts=(0, 1))
        stub = StubObjective()
        inj = FaultInjector(stub, plan,
                            retry=RetryPolicy(max_retries=2, backoff_s=5.0))
        inj.skip(idx)
        ev = inj(U)
        assert ev.ok and not ev.transient and ev.attempts == 2
        assert stub.calls == 2
        # Final cost = clean run + failed attempt's elapsed time + backoff.
        aborted = plan.draw(idx, 0).abort_fraction * DURATION
        assert ev.cost_s == pytest.approx(DURATION + aborted + 5.0)
        assert inj.stats["retries"] == 1
        assert inj.stats["backoff_s"] == 5.0
        assert inj.stats["transient"] == 0   # retried away, not surfaced

    def test_retries_exhausted_surfaces_transient(self):
        plan = FaultPlan(1.0, seed=7, kinds=(("spurious_failure", 1.0),))
        stub = StubObjective()
        inj = FaultInjector(stub, plan,
                            retry=RetryPolicy(max_retries=1, backoff_s=5.0))
        ev = inj(U)
        assert ev.transient and ev.attempts == 2
        assert ev.status is RunStatus.RUNTIME_ERROR
        assert stub.calls == 2
        spent0 = plan.draw(0, 0).abort_fraction * DURATION
        final = plan.draw(0, 1).abort_fraction * DURATION
        assert ev.cost_s == pytest.approx(final + spent0 + 5.0)
        assert inj.stats["transient"] == 1 and inj.stats["retries"] == 1

    def test_no_policy_means_single_attempt(self):
        plan = FaultPlan(1.0, seed=7, kinds=(("spurious_failure", 1.0),))
        stub = StubObjective()
        ev = FaultInjector(stub, plan)(U)
        assert ev.transient and ev.attempts == 1 and stub.calls == 1

    def test_backoff_escalates_across_retries(self):
        plan = FaultPlan(1.0, seed=7, kinds=(("spurious_failure", 1.0),))
        inj = FaultInjector(StubObjective(), plan,
                            retry=RetryPolicy(max_retries=2, backoff_s=5.0,
                                              backoff_factor=2.0))
        inj(U)
        assert inj.stats["backoff_s"] == pytest.approx(5.0 + 10.0)


class TestSessionState:
    def test_skip_advances_fault_index(self):
        inj = FaultInjector(StubObjective(), FaultPlan(0.0))
        inj.skip(5)
        inj(U)
        assert inj.stats["index"] == 6
        with pytest.raises(ValueError):
            inj.skip(-1)

    def test_with_space_shares_index(self):
        inj = FaultInjector(StubObjective(), FaultPlan(0.0))
        view = inj.with_space(None)
        view(U)
        inj(U)
        assert inj.stats["index"] == 2 == view.stats["index"]

    def test_identical_stacks_are_deterministic(self):
        def run():
            inj = FaultInjector(StubObjective(), FaultPlan(0.5, seed=11),
                                retry=RetryPolicy(max_retries=1))
            return [inj(U) for _ in range(20)], inj.stats

        evs_a, stats_a = run()
        evs_b, stats_b = run()
        assert stats_a == stats_b
        for a, b in zip(evs_a, evs_b):
            assert (a.objective, a.cost_s, a.status, a.transient, a.fault,
                    a.attempts) == (b.objective, b.cost_s, b.status,
                                    b.transient, b.fault, b.attempts)
