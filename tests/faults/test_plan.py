"""Tests for the deterministic fault plan and retry policy."""

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultPlan, RetryPolicy
from repro.faults.plan import _ABORT_FRACTION_RANGE, _SLOWDOWN_RANGES


class TestValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_rate_out_of_range(self, rate):
        with pytest.raises(ValueError):
            FaultPlan(rate)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPlan(0.5, kinds=(("cosmic_ray", 1.0),))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0.5, kinds=())

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0.5, kinds=(("executor_loss", 0.0),))

    def test_negative_coordinates_rejected(self):
        plan = FaultPlan(0.5)
        with pytest.raises(ValueError):
            plan.draw(-1)
        with pytest.raises(ValueError):
            plan.draw(0, attempt=-1)


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = FaultPlan(0.7, seed=42)
        b = FaultPlan(0.7, seed=42)
        for i in range(50):
            for attempt in range(3):
                assert a.draw(i, attempt) == b.draw(i, attempt)

    def test_draw_is_pure(self):
        plan = FaultPlan(0.7, seed=42)
        first = [plan.draw(i) for i in range(20)]
        # Re-drawing in any order yields the same events: no hidden state.
        again = [plan.draw(i) for i in reversed(range(20))]
        assert first == list(reversed(again))

    def test_different_seeds_differ(self):
        a = FaultPlan(0.7, seed=1)
        b = FaultPlan(0.7, seed=2)
        assert any(a.draw(i) != b.draw(i) for i in range(50))

    def test_retry_rerolls_independently(self):
        plan = FaultPlan(1.0, seed=0)
        assert any(plan.draw(i, 0) != plan.draw(i, 1) for i in range(50))


class TestRates:
    def test_rate_zero_never_fires(self):
        plan = FaultPlan(0.0, seed=3)
        assert all(plan.draw(i) is None for i in range(200))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(1.0, seed=3)
        assert all(plan.draw(i) is not None for i in range(200))

    def test_empirical_rate_matches(self):
        plan = FaultPlan(0.3, seed=9)
        hits = sum(plan.draw(i) is not None for i in range(3000))
        assert 0.25 < hits / 3000 < 0.35


class TestTaxonomy:
    def test_spurious_failure_always_aborts(self):
        plan = FaultPlan(1.0, seed=5, kinds=(("spurious_failure", 1.0),))
        lo, hi = _ABORT_FRACTION_RANGE
        for i in range(100):
            ev = plan.draw(i)
            assert ev.kind == "spurious_failure"
            assert ev.aborts
            assert ev.slowdown == 1.0
            assert lo <= ev.abort_fraction <= hi

    @pytest.mark.parametrize("kind", ["straggler_node", "network_degradation"])
    def test_pure_slowdown_kinds(self, kind):
        plan = FaultPlan(1.0, seed=5, kinds=((kind, 1.0),))
        lo, hi = _SLOWDOWN_RANGES[kind]
        for i in range(100):
            ev = plan.draw(i)
            assert ev.kind == kind
            assert not ev.aborts
            assert lo <= ev.slowdown <= hi

    def test_executor_loss_has_both_modes(self):
        plan = FaultPlan(1.0, seed=5, kinds=(("executor_loss", 1.0),))
        events = [plan.draw(i) for i in range(200)]
        aborts = [e for e in events if e.aborts]
        slows = [e for e in events if not e.aborts]
        assert aborts and slows           # 50/50 coin: both arms occur
        lo, hi = _SLOWDOWN_RANGES["executor_loss"]
        assert all(lo <= e.slowdown <= hi for e in slows)

    def test_all_kinds_reachable_at_default_weights(self):
        plan = FaultPlan(1.0, seed=5)
        kinds = {plan.draw(i).kind for i in range(500)}
        assert kinds == {k for k, _ in FAULT_KINDS}


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2

    @pytest.mark.parametrize("kw", [
        {"max_retries": -1},
        {"backoff_s": -1.0},
        {"backoff_factor": 0.5},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)

    def test_exponential_delays(self):
        policy = RetryPolicy(max_retries=3, backoff_s=5.0, backoff_factor=2.0)
        assert [policy.delay_s(k) for k in range(3)] == [5.0, 10.0, 20.0]

    def test_negative_retry_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(-1)
