"""Liveness faults: HangPlan determinism, HangInjector, WorkerDeath,
and concurrent views of both injectors (the k>1 async fault path)."""

import threading
import time

import numpy as np
import pytest

from repro.faults import (FaultInjector, FaultPlan, HangEvent, HangInjector,
                          HangPlan, RetryPolicy, WorkerDeath)
from repro.tuners import SyntheticObjective, synthetic_space


def make_objective(seed=0, dim=4):
    space = synthetic_space(dim)
    return space, SyntheticObjective(space, n_effective=3, noise=0.01,
                                     rng=seed)


class TestHangPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            HangPlan(-0.1)
        with pytest.raises(ValueError):
            HangPlan(1.5)
        with pytest.raises(ValueError):
            HangPlan(0.1, hang_s=-1.0)
        with pytest.raises(ValueError):
            HangPlan(0.1, death_share=2.0)
        with pytest.raises(ValueError):
            HangPlan(0.1).draw(-1)

    def test_pure_function_of_coordinates(self):
        plan = HangPlan(0.5, seed=7, hang_s=1.0)
        for index in range(20):
            for attempt in range(3):
                assert plan.draw(index, attempt) == plan.draw(index, attempt)

    def test_attempts_reroll_independently(self):
        plan = HangPlan(0.5, seed=3)
        draws = {(i, a): plan.draw(i, a)
                 for i in range(40) for a in range(2)}
        # Some evaluation must differ between attempt 0 and attempt 1.
        assert any(draws[(i, 0)] != draws[(i, 1)] for i in range(40))

    def test_rate_zero_never_fires(self):
        plan = HangPlan(0.0, seed=1)
        assert all(plan.draw(i) is None for i in range(50))

    def test_rate_one_always_fires(self):
        plan = HangPlan(1.0, seed=1)
        assert all(plan.draw(i) is not None for i in range(50))

    def test_death_share_split(self):
        deaths = sum(plan_draw.kind == "worker_death"
                     for plan_draw in (HangPlan(1.0, seed=2,
                                                death_share=0.5).draw(i)
                                       for i in range(200)))
        assert 60 < deaths < 140  # ~100 expected

    def test_death_share_extremes(self):
        assert all(HangPlan(1.0, seed=0, death_share=1.0).draw(i).kind
                   == "worker_death" for i in range(20))
        assert all(HangPlan(1.0, seed=0, death_share=0.0).draw(i).kind
                   == "hang" for i in range(20))

    def test_poison_indices_always_hang(self):
        plan = HangPlan(0.0, seed=0, hang_s=2.5, poison={3})
        assert plan.draw(3) == HangEvent("hang", hang_s=2.5)
        assert plan.draw(3, attempt=5) is not None
        assert plan.draw(2) is None


class TestHangInjector:
    def test_rejects_bad_poison_kind(self):
        _, objective = make_objective()
        with pytest.raises(ValueError, match="poison_kind"):
            HangInjector(objective, HangPlan(0.0), poison_kind="nope")

    def test_passthrough_at_rate_zero(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(0.0))
        u = np.full(space.dim, 0.5)
        ev = inj(u)
        assert ev.objective == pytest.approx(ev.objective)
        assert inj.stats == {"index": 1, "hangs": 0, "deaths": 0}

    def test_worker_death_raises_before_execution(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(1.0, seed=0,
                                               death_share=1.0))
        with pytest.raises(WorkerDeath, match="evaluation 0"):
            inj(np.full(space.dim, 0.5))
        assert inj.stats["deaths"] == 1
        # The wrapped objective never ran.
        assert objective.n_evaluations == 0

    def test_hang_wedges_then_executes(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(1.0, seed=0, hang_s=0.2,
                                               death_share=0.0))
        start = time.monotonic()
        ev = inj(np.full(space.dim, 0.5))
        assert time.monotonic() - start >= 0.2
        assert inj.stats["hangs"] == 1
        assert ev.objective > 0

    def test_poison_predicate_overrides_plan(self):
        space, objective = make_objective()
        target = np.full(space.dim, 0.25)
        inj = HangInjector(objective, HangPlan(0.0),
                           poison=lambda u: bool(np.allclose(u, target)),
                           poison_kind="worker_death")
        inj(np.full(space.dim, 0.75))  # not poison: runs clean
        with pytest.raises(WorkerDeath):
            inj(target)
        with pytest.raises(WorkerDeath):
            inj(target)                # every attempt, deterministically

    def test_skip_advances_index(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(1.0, seed=0,
                                               death_share=1.0))
        inj.skip(3)
        assert inj.stats["index"] == 3
        with pytest.raises(ValueError):
            inj.skip(-1)

    def test_objective_protocol_delegation(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(0.0))
        assert inj.space is objective.space
        assert inj.time_limit_s == objective.time_limit_s
        assert inj.n_evaluations == 0  # __getattr__ delegation

    def test_spawn_view_shares_counters(self):
        space, objective = make_objective()
        inj = HangInjector(objective, HangPlan(0.0))
        assert inj.spawn_view_capable
        views = [inj.spawn_view() for _ in range(4)]
        u = np.full(space.dim, 0.5)
        threads = [threading.Thread(target=v, args=(u,)) for v in views]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert inj.stats["index"] == 4
        assert objective.n_evaluations == 4

    def test_spawn_view_capable_tracks_inner(self):
        space, objective = make_objective()

        class _Plain:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def __call__(self, u, time_limit_s=None):
                return self._inner(u, time_limit_s)

        inj = HangInjector(_Plain(objective), HangPlan(0.0))
        assert not inj.spawn_view_capable


class TestFaultInjectorViews:
    """FaultInjector.spawn_view: the k>1 async fault path (satellite)."""

    def test_views_share_the_plan_index(self):
        space, objective = make_objective()
        inj = FaultInjector(objective, FaultPlan(0.0, seed=1))
        assert inj.spawn_view_capable
        views = [inj.spawn_view() for _ in range(6)]
        u = np.full(space.dim, 0.5)
        threads = [threading.Thread(target=v, args=(u,)) for v in views]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert inj.stats["index"] == 6
        assert objective.n_evaluations == 6

    def test_concurrent_retries_charge_backoff(self):
        # Each view executes its own retry loop on the worker; the backoff
        # is charged into that evaluation's cost, not wall-clocked.
        space, objective = make_objective()
        inj = FaultInjector(objective, FaultPlan(0.6, seed=5),
                            retry=RetryPolicy(max_retries=2, backoff_s=3.0))
        views = [inj.spawn_view() for _ in range(16)]
        results = [None] * len(views)

        def run(i):
            results[i] = views[i](np.full(space.dim, 0.4))

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(views))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = inj.stats
        assert stats["index"] == 16
        assert stats["injected"] > 0
        retried = [e for e in results if e.attempts > 1]
        assert retried, "a 0.6 fault rate must trigger at least one retry"
        assert stats["backoff_s"] > 0
        # Backoff shows up in the retried evaluations' charged cost.
        assert sum(e.cost_s for e in retried) >= stats["backoff_s"]
