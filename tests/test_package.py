"""Package-level sanity: public API surface and __all__ hygiene."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.space",
    "repro.sampling",
    "repro.ml",
    "repro.gp",
    "repro.sparksim",
    "repro.workloads",
    "repro.core",
    "repro.tuners",
    "repro.bench",
    "repro.utils",
]


class TestPublicSurface:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_names_resolve(self, name):
        """Everything listed in __all__ must actually exist."""
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists {symbol}"

    def test_version(self):
        assert repro.__version__

    def test_headline_imports(self):
        # The README quickstart names these; they must stay importable.
        from repro import (ROBOTune, WorkloadObjective, get_workload,
                           spark_space)
        assert callable(spark_space)
        assert ROBOTune.name == "ROBOTune"

    def test_lazy_tuners_reexport(self):
        from repro.tuners import ROBOTune, ROBOTuneResult
        assert ROBOTune.name == "ROBOTune"
        with pytest.raises(AttributeError):
            from repro import tuners
            tuners.NotAThing  # noqa: B018

    def test_docstrings_everywhere(self):
        """Every public package module carries a module docstring."""
        for name in PACKAGES:
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"
