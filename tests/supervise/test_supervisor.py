"""EvaluationSupervisor: deadlines, heartbeats, speculation, reclaim.

These tests exercise real threads and the wall clock (short, CI-safe
durations): supervision is exactly the part of the library whose job is
real elapsed time, which is why ``supervise/`` is exempt from the
determinism lint and documented as not bit-reproducible.
"""

import threading
import time

import pytest

from repro.obs import InMemorySink, Tracer
from repro.supervise import (Completed, DeadlineHit, EvaluationSupervisor,
                             SupervisePolicy, TaskFailed)
from repro.utils.parallel import WorkerPool


def make(n_workers=2, tracer=None, **policy_kwargs):
    pool = WorkerPool(n_workers, backend="thread")
    policy = SupervisePolicy(**policy_kwargs)
    return pool, EvaluationSupervisor(pool, policy, tracer=tracer)


def const_factory(value):
    return lambda: (lambda: value)


class TestPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SupervisePolicy(eval_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisePolicy(quarantine_after=0)
        with pytest.raises(ValueError):
            SupervisePolicy(max_redispatch=-1)
        with pytest.raises(ValueError):
            SupervisePolicy(poll_s=0.0)

    def test_deadline_policy_inherits_knobs(self):
        policy = SupervisePolicy(eval_timeout_s=7.0, deadline_quantile=0.5,
                                 deadline_multiplier=4.0,
                                 straggler_multiplier=3.0, min_completions=5)
        deadlines = policy.deadline_policy()
        assert deadlines.eval_timeout_s == 7.0
        assert deadlines.quantile == 0.5
        assert deadlines.multiplier == 4.0
        assert deadlines.straggler_multiplier == 3.0
        assert deadlines.min_completions == 5


class TestBasicProtocol:
    def test_completion_round_trip(self):
        pool, sup = make()
        with pool:
            sup.submit(const_factory(41), tag=0)
            assert sup.in_flight == 1
            outcome = sup.next_outcome()
        assert isinstance(outcome, Completed)
        assert outcome.tag == 0
        assert outcome.result == 41
        assert not outcome.speculative
        assert sup.in_flight == 0
        # Completion durations feed the adaptive deadline.
        assert sup.deadlines.n_observed == 1

    def test_duplicate_tag_rejected(self):
        pool, sup = make()
        with pool:
            sup.submit(const_factory(1), tag="t")
            with pytest.raises(RuntimeError, match="already supervised"):
                sup.submit(const_factory(2), tag="t")
            sup.next_outcome()

    def test_next_outcome_requires_inflight(self):
        pool, sup = make()
        with pool:
            with pytest.raises(RuntimeError, match="no supervised tasks"):
                sup.next_outcome()

    def test_serial_pool_degenerates_to_fifo(self):
        pool = WorkerPool(1, backend="serial")
        sup = EvaluationSupervisor(pool, SupervisePolicy())
        with pool:
            sup.submit(const_factory("ok"), tag=5)
            outcome = sup.next_outcome()
        assert isinstance(outcome, Completed)
        assert outcome.result == "ok"


class TestDeadlines:
    def test_hung_task_hits_deadline(self):
        release = threading.Event()
        sink = InMemorySink()
        tracer = Tracer([sink])
        pool, sup = make(tracer=tracer, eval_timeout_s=0.2,
                         quarantine_after=1)
        with pool:
            sup.submit(lambda: (lambda: release.wait(30.0)), tag=0,
                       key=b"poison")
            start = time.monotonic()
            outcome = sup.next_outcome()
            waited = time.monotonic() - start
            release.set()             # unblock the abandoned thread
        assert isinstance(outcome, DeadlineHit)
        assert outcome.tag == 0
        assert outcome.deadline_s == pytest.approx(0.2)
        assert outcome.elapsed_s >= 0.2
        assert waited < 10.0          # the watchdog gave up, not the test
        assert outcome.quarantined    # quarantine_after=1
        assert pool.abandoned_tasks == 1
        assert tracer.counters["supervise.deadline_hit"] == 1
        assert tracer.counters["supervise.quarantine"] == 1

    def test_heartbeat_pushes_deadline_out(self):
        pool, sup = make(eval_timeout_s=0.5)
        with pool:
            sup.submit(lambda: (lambda: time.sleep(0.7) or "done"), tag=0)
            time.sleep(0.35)
            sup.heartbeat(0)          # sign of life at 0.35s
            outcome = sup.next_outcome()
        assert isinstance(outcome, Completed)
        assert outcome.result == "done"

    def test_heartbeat_unknown_tag_is_noop(self):
        pool, sup = make(eval_timeout_s=1.0)
        with pool:
            sup.heartbeat("nope")     # must not raise


class TestWorkerDeath:
    def test_redispatch_recovers(self):
        calls = []
        sink = InMemorySink()
        tracer = Tracer([sink])

        def factory():
            calls.append(1)

            def thunk(attempt=len(calls)):
                if attempt == 1:
                    raise RuntimeError("worker died")
                return "recovered"
            return thunk

        pool, sup = make(tracer=tracer, max_redispatch=1)
        with pool:
            sup.submit(factory, tag=0, key=b"k")
            outcome = sup.next_outcome()
        assert isinstance(outcome, Completed)
        assert outcome.result == "recovered"
        assert len(calls) == 2        # fresh thunk per physical dispatch
        assert tracer.counters["supervise.reclaim"] == 1

    def test_redispatch_exhaustion_fails_task(self):
        def factory():
            def thunk():
                raise RuntimeError("always dies")
            return thunk

        pool, sup = make(max_redispatch=1, quarantine_after=10)
        with pool:
            sup.submit(factory, tag=0, key=b"k")
            outcome = sup.next_outcome()
        assert isinstance(outcome, TaskFailed)
        assert isinstance(outcome.error, RuntimeError)
        assert not outcome.quarantined

    def test_quarantined_config_is_not_redispatched(self):
        calls = []

        def factory():
            calls.append(1)

            def thunk():
                raise RuntimeError("poison")
            return thunk

        pool, sup = make(max_redispatch=5, quarantine_after=1)
        with pool:
            sup.submit(factory, tag=0, key=b"poison")
            outcome = sup.next_outcome()
        assert isinstance(outcome, TaskFailed)
        assert outcome.quarantined
        assert len(calls) == 1        # quarantine preempts redispatch

    def test_keyless_task_never_quarantined(self):
        def factory():
            def thunk():
                raise RuntimeError("dies")
            return thunk

        pool, sup = make(max_redispatch=0, quarantine_after=1)
        with pool:
            sup.submit(factory, tag=0)  # no key
            outcome = sup.next_outcome()
        assert isinstance(outcome, TaskFailed)
        assert not outcome.quarantined


class TestSpeculation:
    """Straggler twins.  Warm-up completions take ~0.05s so the adaptive
    thresholds are meaningful: straggler at ~2x, deadline pushed far out
    with a large multiplier so only speculation (not abandonment) fires.
    """

    def _warm(self, sup, tag_base=100):
        sup.submit(lambda: (lambda: time.sleep(0.05) or None),
                   tag=tag_base)
        assert isinstance(sup.next_outcome(), Completed)

    def test_twin_wins_race(self):
        release = threading.Event()
        dispatches = []
        sink = InMemorySink()
        tracer = Tracer([sink])

        def factory():
            dispatches.append(1)
            if len(dispatches) == 1:
                return lambda: release.wait(30.0)  # the straggler
            return lambda: "twin"
        pool, sup = make(n_workers=2, tracer=tracer, eval_timeout_s=20.0,
                         speculate=True, min_completions=1,
                         deadline_multiplier=1000.0)
        with pool:
            self._warm(sup)
            sup.submit(factory, tag=0, key=b"k")
            outcome = sup.next_outcome()
            release.set()
        assert isinstance(outcome, Completed)
        assert outcome.result == "twin"
        assert outcome.speculative
        assert len(dispatches) == 2
        assert tracer.counters["supervise.speculate"] == 1
        assert tracer.counters["supervise.speculate_wins"] == 1
        assert pool.abandoned_tasks == 1  # the straggler was dropped

    def test_original_wins_race(self):
        release = threading.Event()
        dispatches = []

        def factory():
            dispatches.append(1)
            if len(dispatches) == 1:
                return lambda: time.sleep(0.3) or "original"
            return lambda: release.wait(30.0)  # twin hangs
        pool, sup = make(n_workers=2, eval_timeout_s=20.0, speculate=True,
                         min_completions=1, deadline_multiplier=1000.0,
                         straggler_multiplier=1.5)
        with pool:
            self._warm(sup)
            sup.submit(factory, tag=0, key=b"k")
            outcome = sup.next_outcome()
            release.set()
        assert isinstance(outcome, Completed)
        assert outcome.result == "original"
        assert not outcome.speculative
        assert len(dispatches) == 2       # a twin was launched and lost
        assert pool.abandoned_tasks == 1

    def test_no_twin_without_free_slot(self):
        dispatches = []

        def factory():
            dispatches.append(1)
            return lambda: time.sleep(0.25) or "slow"
        pool, sup = make(n_workers=1, eval_timeout_s=20.0, speculate=True,
                         min_completions=1, deadline_multiplier=1000.0)
        with pool:
            self._warm(sup)
            sup.submit(factory, tag=0)
            outcome = sup.next_outcome()
        assert isinstance(outcome, Completed)
        assert len(dispatches) == 1       # nowhere to put a twin
