"""Deadline policy: running-quantile thresholds and the hard cap."""

import numpy as np
import pytest

from repro.supervise import DeadlinePolicy


class TestValidation:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError, match="eval_timeout_s"):
            DeadlinePolicy(0.0)
        with pytest.raises(ValueError, match="eval_timeout_s"):
            DeadlinePolicy(-1.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            DeadlinePolicy(quantile=0.0)
        with pytest.raises(ValueError, match="quantile"):
            DeadlinePolicy(quantile=1.5)

    def test_rejects_bad_multipliers(self):
        with pytest.raises(ValueError, match="multipliers"):
            DeadlinePolicy(multiplier=1.0)
        with pytest.raises(ValueError, match="multipliers"):
            DeadlinePolicy(straggler_multiplier=0.5)

    def test_rejects_bad_min_completions(self):
        with pytest.raises(ValueError, match="min_completions"):
            DeadlinePolicy(min_completions=0)


class TestColdPolicy:
    def test_unbounded_without_cap_or_history(self):
        policy = DeadlinePolicy()
        assert policy.deadline_s() is None
        assert policy.straggler_threshold_s() is None

    def test_hard_cap_applies_before_warmup(self):
        policy = DeadlinePolicy(30.0)
        assert policy.deadline_s() == 30.0
        # Speculation has no basis before the quantile warms up.
        assert policy.straggler_threshold_s() is None

    def test_warmup_counts_completions(self):
        policy = DeadlinePolicy(min_completions=3)
        policy.observe(1.0)
        policy.observe(1.0)
        assert policy.n_observed == 2
        assert policy.deadline_s() is None
        policy.observe(1.0)
        assert policy.deadline_s() is not None


class TestAdaptiveThresholds:
    def test_deadline_scales_from_quantile(self):
        policy = DeadlinePolicy(quantile=0.5, multiplier=3.0,
                                min_completions=3)
        for d in (1.0, 2.0, 3.0):
            policy.observe(d)
        assert policy.deadline_s() == pytest.approx(3.0 * 2.0)

    def test_straggler_uses_its_own_multiplier(self):
        policy = DeadlinePolicy(quantile=0.5, multiplier=3.0,
                                straggler_multiplier=2.0, min_completions=3)
        for d in (1.0, 2.0, 3.0):
            policy.observe(d)
        assert policy.straggler_threshold_s() == pytest.approx(2.0 * 2.0)
        assert policy.straggler_threshold_s() < policy.deadline_s()

    def test_hard_cap_wins_when_tighter(self):
        policy = DeadlinePolicy(4.0, quantile=0.5, multiplier=3.0,
                                min_completions=3)
        for d in (10.0, 10.0, 10.0):
            policy.observe(d)
        assert policy.deadline_s() == 4.0
        assert policy.straggler_threshold_s() == 4.0

    def test_adaptive_wins_when_tighter(self):
        policy = DeadlinePolicy(100.0, quantile=0.5, multiplier=3.0,
                                min_completions=3)
        for d in (1.0, 1.0, 1.0):
            policy.observe(d)
        assert policy.deadline_s() == pytest.approx(3.0)

    def test_zero_durations_floored(self):
        # An all-instant history must not produce a zero deadline.
        policy = DeadlinePolicy(min_completions=3)
        for _ in range(3):
            policy.observe(0.0)
        assert policy.deadline_s() > 0.0

    def test_quantile_tracks_distribution(self):
        policy = DeadlinePolicy(quantile=0.95, multiplier=3.0,
                                min_completions=3)
        rng = np.random.default_rng(0)
        for d in rng.uniform(1.0, 2.0, size=100):
            policy.observe(float(d))
        assert 3.0 * 1.8 < policy.deadline_s() < 3.0 * 2.1
