"""Poison-config quarantine: strike counting and vector identity."""

import numpy as np
import pytest

from repro.supervise import PoisonQuarantine
from repro.supervise.quarantine import vector_key


class TestVectorKey:
    def test_identical_vectors_share_a_key(self):
        u = np.array([0.25, 0.5, 0.75])
        assert vector_key(u) == vector_key(u.copy())

    def test_distinct_vectors_differ(self):
        assert vector_key(np.array([0.1, 0.2])) != \
            vector_key(np.array([0.1, 0.3]))

    def test_non_contiguous_input_normalized(self):
        grid = np.arange(12, dtype=float).reshape(3, 4)
        col = grid[:, 1]  # strided view
        assert vector_key(col) == vector_key(np.ascontiguousarray(col))

    def test_dtype_normalized(self):
        assert vector_key(np.array([1, 2])) == \
            vector_key(np.array([1.0, 2.0]))


class TestPoisonQuarantine:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PoisonQuarantine(0)

    def test_quarantines_at_cap(self):
        q = PoisonQuarantine(3)
        key = vector_key(np.array([0.5]))
        assert not q.strike(key)
        assert not q.strike(key)
        assert q.strike(key)          # third strike
        assert q.is_quarantined(key)
        assert q.strikes(key) == 3

    def test_single_strike_cap(self):
        q = PoisonQuarantine(1)
        key = b"k"
        assert q.strike(key)
        assert q.is_quarantined(key)

    def test_keys_are_independent(self):
        q = PoisonQuarantine(2)
        a, b = b"a", b"b"
        q.strike(a)
        assert not q.is_quarantined(a)
        assert not q.is_quarantined(b)
        assert q.strikes(b) == 0

    def test_len_and_listing(self):
        q = PoisonQuarantine(1)
        assert len(q) == 0
        q.strike(b"x")
        q.strike(b"y")
        assert len(q) == 2
        assert q.quarantined == sorted([b"x", b"y"])

    def test_strikes_past_cap_stay_quarantined(self):
        q = PoisonQuarantine(2)
        key = b"p"
        q.strike(key)
        q.strike(key)
        assert q.strike(key)  # still reported quarantined
        assert q.strikes(key) == 3
