"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.space import spark_space
from repro.sparksim import SparkSimulator


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def space():
    """The full 44-dimensional Spark tuning space."""
    return spark_space()


@pytest.fixture(scope="session")
def simulator() -> SparkSimulator:
    return SparkSimulator()
