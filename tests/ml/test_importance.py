"""Tests for grouped MDA permutation importance."""

import numpy as np
import pytest

from repro.ml import RandomForestRegressor, grouped_permutation_importance


def fit_forest(seed=0, n=200):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    # y depends on x0 strongly, on (x1, x2) jointly, never on x3..x5.
    y = 5 * X[:, 0] + 2 * np.sin(4 * X[:, 1]) * np.sign(X[:, 2] - 0.5) \
        + rng.normal(0, 0.05, n)
    forest = RandomForestRegressor(100, rng=seed).fit(X, y)
    return forest


class TestRanking:
    def test_informative_singleton_ranks_first(self):
        forest = fit_forest()
        groups = {f"f{i}": [i] for i in range(6)}
        imps = grouped_permutation_importance(forest, groups, n_repeats=5,
                                              rng=1)
        assert imps[0].group == "f0"
        assert imps[0].importance > 0.2

    def test_noise_features_near_zero(self):
        forest = fit_forest()
        groups = {f"f{i}": [i] for i in range(6)}
        imps = {g.group: g.importance
                for g in grouped_permutation_importance(forest, groups,
                                                        n_repeats=5, rng=2)}
        for f in ("f3", "f4", "f5"):
            assert abs(imps[f]) < 0.05

    def test_joint_group_beats_individual_members(self):
        """Permuting the interacting pair together destroys more signal
        than permuting either column alone."""
        forest = fit_forest()
        single = grouped_permutation_importance(
            forest, {"x1": [1], "x2": [2]}, n_repeats=8, rng=3)
        joint = grouped_permutation_importance(
            forest, {"x1x2": [1, 2]}, n_repeats=8, rng=3)
        best_single = max(g.importance for g in single)
        assert joint[0].importance > best_single

    def test_results_sorted_descending(self):
        forest = fit_forest()
        groups = {f"f{i}": [i] for i in range(6)}
        imps = grouped_permutation_importance(forest, groups, n_repeats=3,
                                              rng=4)
        vals = [g.importance for g in imps]
        assert vals == sorted(vals, reverse=True)


class TestValidation:
    def test_rejects_empty_group(self):
        forest = fit_forest(n=60)
        with pytest.raises(ValueError):
            grouped_permutation_importance(forest, {"g": []}, rng=0)

    def test_rejects_out_of_range_columns(self):
        forest = fit_forest(n=60)
        with pytest.raises(IndexError):
            grouped_permutation_importance(forest, {"g": [99]}, rng=0)

    def test_rejects_zero_repeats(self):
        forest = fit_forest(n=60)
        with pytest.raises(ValueError):
            grouped_permutation_importance(forest, {"g": [0]}, n_repeats=0)

    def test_std_zero_for_single_repeat(self):
        forest = fit_forest(n=60)
        imps = grouped_permutation_importance(forest, {"g": [0]},
                                              n_repeats=1, rng=1)
        assert imps[0].std == 0.0
