"""Parity of the batched permutation-importance scorer with the loop."""

import numpy as np
import pytest

from repro.ml import RandomForestRegressor, grouped_permutation_importance
from repro.ml.importance import (_permuted_oob_scores_batched,
                                 _permuted_oob_scores_loop)


def make_problem(n=150, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    y = 5 * X[:, 0] + 2 * X[:, 1] * X[:, 2] + rng.normal(0, 0.05, n)
    forest = RandomForestRegressor(40, rng=seed).fit(X, y)
    groups = {"a": [0], "bc": [1, 2], "rest": [3, 4], "f5": [5]}
    return forest, groups


class TestScorerParity:
    @pytest.mark.parametrize("cols", [(0,), (1, 2), (3, 4, 5)])
    def test_batched_scores_bitwise_equal_loop(self, cols):
        forest, _ = make_problem()
        n = forest._X_train.shape[0]
        rng = np.random.default_rng(3)
        perms = np.stack([rng.permutation(n) for _ in range(6)])
        a = _permuted_oob_scores_batched(forest, cols, perms)
        b = _permuted_oob_scores_loop(forest, cols, perms)
        np.testing.assert_array_equal(a, b)


class TestImportanceParity:
    def test_batched_equals_loop_bitwise(self):
        forest, groups = make_problem(seed=1)
        a = grouped_permutation_importance(forest, groups, n_repeats=5,
                                           rng=11, batched=True)
        b = grouped_permutation_importance(forest, groups, n_repeats=5,
                                           rng=11, batched=False)
        assert [(g.group, g.columns, g.importance, g.std) for g in a] \
            == [(g.group, g.columns, g.importance, g.std) for g in b]

    def test_n_jobs_does_not_change_result(self):
        forest, groups = make_problem(seed=2)
        a = grouped_permutation_importance(forest, groups, n_repeats=4,
                                           rng=7, n_jobs=1)
        b = grouped_permutation_importance(forest, groups, n_repeats=4,
                                           rng=7, n_jobs=3)
        assert [(g.group, g.importance) for g in a] \
            == [(g.group, g.importance) for g in b]

    def test_signal_features_rank_first(self):
        forest, groups = make_problem(seed=3)
        res = grouped_permutation_importance(forest, groups, n_repeats=5,
                                             rng=5)
        assert res[0].group in ("a", "bc")
        assert res[0].importance > res[-1].importance
