"""Parity of the vectorized CART split search with the scalar reference."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


def random_dataset(rng, n, d):
    """Mix of continuous, discrete, tied, and constant columns."""
    X = rng.random((n, d))
    if d > 1:
        X[:, 1] = rng.integers(0, 3, n)          # heavy ties
    if d > 2:
        X[:, 2] = 0.5                            # constant
    if d > 3:
        X[:, 3] = np.round(X[:, 3], 1)           # coarse grid
    y = X[:, 0] * 3 + rng.normal(0, 0.2, n)
    return X, y


class TestBatchThresholds:
    @pytest.mark.parametrize("seed", range(8))
    def test_batch_matches_scalar_per_column(self, seed):
        rng = np.random.default_rng(seed)
        X, y = random_dataset(rng, n=int(rng.integers(5, 80)), d=5)
        tree = DecisionTreeRegressor()
        base_sse = float(np.sum((y - y.mean()) ** 2))
        # Only non-constant columns enter the batched path in _find_split.
        nonconst = [j for j in range(X.shape[1])
                    if X[:, j].min() != X[:, j].max()]
        M = X[:, nonconst]
        thrs, gains = tree._best_thresholds_batch(M, y, base_sse)
        for out_j, j in enumerate(nonconst):
            ref = tree._best_threshold(X[:, j], y, base_sse)
            if ref is None:
                assert gains[out_j] == -np.inf
            else:
                ref_thr, ref_gain = ref
                assert thrs[out_j] == ref_thr
                assert gains[out_j] == ref_gain

    def test_all_tied_column_has_no_split(self):
        tree = DecisionTreeRegressor()
        y = np.array([1.0, 2.0, 3.0])
        M = np.array([[1.0], [1.0], [1.0]])
        _, gains = tree._best_thresholds_batch(
            M, y, float(np.sum((y - y.mean()) ** 2)))
        assert gains[0] == -np.inf


class TestWholeTreeParity:
    @pytest.mark.parametrize("splitter", ["best", "random"])
    @pytest.mark.parametrize("seed", range(4))
    def test_fit_is_deterministic(self, splitter, seed):
        rng = np.random.default_rng(seed)
        X, y = random_dataset(rng, 90, 5)
        Xq = np.random.default_rng(seed + 100).random((40, 5))
        a = DecisionTreeRegressor(splitter=splitter, max_features=0.6,
                                  rng=seed).fit(X, y)
        b = DecisionTreeRegressor(splitter=splitter, max_features=0.6,
                                  rng=seed).fit(X, y)
        np.testing.assert_array_equal(a.predict(Xq), b.predict(Xq))

    def test_best_split_equals_bruteforce_loop(self):
        """_find_split_best must pick what a plain per-feature loop picks."""
        for trial in range(20):
            X, y = random_dataset(np.random.default_rng(trial), 40, 5)
            tree = DecisionTreeRegressor()
            idx = np.arange(len(y))
            base_sse = float(np.sum((y - y.mean()) ** 2))
            k = X.shape[1]  # every feature in the batch, no extension scan
            got = tree._find_split_best(X, y, idx, k,
                                        np.random.default_rng(trial))
            # Reference: scalar search over the same permutation order with
            # the loop's strict ``>`` (first-max) tie-break.
            features = np.random.default_rng(trial).permutation(X.shape[1])
            best_gain, best = 0.0, None
            for f in features:
                col = X[idx, f]
                if col.min() == col.max():
                    continue
                res = tree._best_threshold(col, y[idx], base_sse)
                if res is not None and res[1] > best_gain:
                    best_gain, best = res[1], (int(f), float(res[0]))
            if best is None:
                assert got is None
            else:
                assert got is not None
                feat, thr, left_idx, right_idx, gain = got
                assert (feat, thr) == best
                assert gain == best_gain
                mask = X[idx, best[0]] <= best[1]
                np.testing.assert_array_equal(left_idx, idx[mask])
                np.testing.assert_array_equal(right_idx, idx[~mask])
