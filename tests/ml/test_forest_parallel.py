"""Parallel-training parity: worker count must not change the forest."""

import numpy as np
import pytest

from repro.ml import ExtraTreesRegressor, RandomForestRegressor


def make_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    y = 3 * X[:, 0] + np.sin(5 * X[:, 1]) + rng.normal(0, 0.05, n)
    return X, y


def assert_forests_identical(a, b):
    assert len(a.trees_) == len(b.trees_)
    np.testing.assert_array_equal(a.oob_mask_, b.oob_mask_)
    Xq = np.random.default_rng(99).random((50, a._X_train.shape[1]))
    for ta, tb in zip(a.trees_, b.trees_):
        np.testing.assert_array_equal(ta.predict(Xq), tb.predict(Xq))


@pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_fit_matches_serial(cls, backend):
    X, y = make_data()
    serial = cls(20, rng=7).fit(X, y)
    par = cls(20, n_jobs=2, parallel_backend=backend, rng=7).fit(X, y)
    assert_forests_identical(serial, par)


@pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
def test_env_var_controls_default(cls, monkeypatch):
    X, y = make_data(seed=3)
    serial = cls(10, rng=1).fit(X, y)
    monkeypatch.setenv("ROBOTUNE_JOBS", "2")
    par = cls(10, parallel_backend="thread", rng=1).fit(X, y)
    assert_forests_identical(serial, par)


def test_oob_score_unchanged_by_jobs():
    X, y = make_data(seed=5)
    s1 = RandomForestRegressor(25, rng=4).fit(X, y).oob_score()
    s2 = RandomForestRegressor(25, n_jobs=3, parallel_backend="thread",
                               rng=4).fit(X, y).oob_score()
    assert s1 == s2
