"""Tests for Random Forests and Extremely Randomized Trees."""

import numpy as np
import pytest

from repro.ml import ExtraTreesRegressor, RandomForestRegressor


def make_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 5))
    y = 4 * X[:, 0] + np.sin(6 * X[:, 1]) + rng.normal(0, 0.05, n)
    return X, y


class TestFit:
    def test_train_r2_high(self):
        X, y = make_data()
        rf = RandomForestRegressor(60, rng=1).fit(X, y)
        assert rf.score(X, y) > 0.9

    def test_generalization_beats_mean(self):
        X, y = make_data(seed=1)
        Xq, yq = make_data(seed=2)
        rf = RandomForestRegressor(60, rng=1).fit(X, y)
        assert rf.score(Xq, yq) > 0.7

    def test_extra_trees_also_fits(self):
        X, y = make_data()
        et = ExtraTreesRegressor(60, rng=1).fit(X, y)
        assert et.score(X, y) > 0.85

    def test_prediction_is_tree_average(self):
        X, y = make_data(n=60)
        rf = RandomForestRegressor(10, rng=2).fit(X, y)
        manual = np.mean([t.predict(X) for t in rf.trees_], axis=0)
        np.testing.assert_allclose(rf.predict(X), manual)

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(5).fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            RandomForestRegressor(5).fit(np.zeros((5, 2)), np.zeros(7))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor(5).predict(np.zeros((1, 2)))

    def test_deterministic_given_seed(self):
        X, y = make_data(n=80)
        a = RandomForestRegressor(20, rng=7).fit(X, y).predict(X)
        b = RandomForestRegressor(20, rng=7).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)


class TestOOB:
    def test_oob_mask_consistent_with_bootstrap(self):
        X, y = make_data(n=50)
        rf = RandomForestRegressor(20, rng=3).fit(X, y)
        # Roughly 1/e ~ 37% of samples OOB per tree.
        frac = rf.oob_mask_.mean()
        assert 0.25 < frac < 0.5

    def test_oob_score_reasonable(self):
        X, y = make_data()
        rf = RandomForestRegressor(80, rng=4).fit(X, y)
        oob = rf.oob_score()
        assert 0.5 < oob <= 1.0
        # OOB is a generalization estimate: below training score.
        assert oob <= rf.score(X, y)

    def test_oob_prediction_permuted_column_drops_score(self):
        X, y = make_data()
        rf = RandomForestRegressor(80, rng=5).fit(X, y)
        base = rf.oob_score()
        Xp = X.copy()
        Xp[:, 0] = np.random.default_rng(6).permutation(Xp[:, 0])
        assert rf.oob_score(Xp) < base - 0.1

    def test_oob_requires_bootstrap(self):
        X, y = make_data(n=40)
        rf = RandomForestRegressor(10, bootstrap=False, rng=1).fit(X, y)
        with pytest.raises(RuntimeError):
            rf.oob_score()

    def test_oob_prediction_shape_validation(self):
        X, y = make_data(n=40)
        rf = RandomForestRegressor(10, rng=1).fit(X, y)
        with pytest.raises(ValueError):
            rf.oob_prediction(X[:10])


class TestFeatureImportances:
    def test_mdi_identifies_informative_features(self):
        X, y = make_data()
        rf = RandomForestRegressor(60, rng=8).fit(X, y)
        imp = rf.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert set(np.argsort(imp)[-2:]) == {0, 1}
