"""Tests for k-fold splitting and cross-validation scoring."""

import numpy as np
import pytest

from repro.ml import KFold, cross_val_score, RandomForestRegressor
from repro.ml.linear import LinearRegression


class TestKFold:
    def test_partition_covers_everything_once(self):
        kf = KFold(4, shuffle=True, rng=0)
        seen = []
        for train, test in kf.split(22):
            seen.extend(test.tolist())
            assert set(train) | set(test) == set(range(22))
            assert not set(train) & set(test)
        assert sorted(seen) == list(range(22))

    def test_fold_sizes_differ_by_at_most_one(self):
        sizes = [len(test) for _, test in KFold(5, rng=1).split(23)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 23

    def test_no_shuffle_is_consecutive(self):
        folds = list(KFold(2, shuffle=False).split(6))
        np.testing.assert_array_equal(folds[0][1], [0, 1, 2])
        np.testing.assert_array_equal(folds[1][1], [3, 4, 5])

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_rejects_single_split(self):
        with pytest.raises(ValueError):
            KFold(1)

    def test_deterministic_given_seed(self):
        a = [t.tolist() for _, t in KFold(3, rng=5).split(10)]
        b = [t.tolist() for _, t in KFold(3, rng=5).split(10)]
        assert a == b


class TestCrossValScore:
    def test_linear_data_high_scores(self):
        rng = np.random.default_rng(2)
        X = rng.random((100, 3))
        y = X @ np.array([1.0, 2.0, -1.0]) + rng.normal(0, 0.01, 100)
        scores = cross_val_score(LinearRegression, X, y, cv=5, rng=3)
        assert scores.shape == (5,)
        assert scores.min() > 0.95

    def test_factory_gets_fresh_model_each_fold(self):
        calls = []

        class Spy(LinearRegression):
            def __init__(self):
                super().__init__()
                calls.append(self)

        rng = np.random.default_rng(4)
        X, y = rng.random((30, 2)), rng.random(30)
        cross_val_score(Spy, X, y, cv=3, rng=5)
        assert len(calls) == 3
        assert len(set(map(id, calls))) == 3
