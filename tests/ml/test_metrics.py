"""Tests for regression/retrieval metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import (mean_absolute_error, mean_squared_error, r2_score,
                      recall_score)


class TestR2:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_bad_model_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 2.0, 1.0])) < 0.0

    def test_constant_target(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            r2_score(np.zeros(0), np.zeros(0))

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_never_above_one(self, ys):
        y = np.asarray(ys)
        rng = np.random.default_rng(0)
        pred = y + rng.normal(0, 1, len(y))
        assert r2_score(y, pred) <= 1.0 + 1e-12


class TestErrors:
    def test_mse_known(self):
        assert mean_squared_error(np.array([0.0, 0.0]),
                                  np.array([1.0, -1.0])) == 1.0

    def test_mae_known(self):
        assert mean_absolute_error(np.array([0.0, 0.0]),
                                   np.array([2.0, -2.0])) == 2.0


class TestRecall:
    def test_full_recall(self):
        assert recall_score({"a", "b"}, {"a", "b", "c"}) == 1.0

    def test_partial_recall(self):
        assert recall_score({"a", "b", "c", "d"}, {"a", "b"}) == 0.5

    def test_zero_recall(self):
        assert recall_score({"a"}, {"b"}) == 0.0

    def test_empty_truth_is_one(self):
        assert recall_score(set(), {"x"}) == 1.0

    def test_accepts_lists(self):
        assert recall_score(["a", "a", "b"], ["b", "a"]) == 1.0
