"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import DecisionTreeRegressor
from repro.ml.tree import resolve_max_features


class TestFitBasics:
    def test_perfectly_separable_step(self):
        X = np.linspace(0, 1, 40)[:, None]
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(rng=0).fit(X, y)
        pred = tree.predict(X)
        np.testing.assert_allclose(pred, y)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).random((20, 3))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor(rng=0).fit(X, y)
        assert tree.node_count == 1
        np.testing.assert_allclose(tree.predict(X), 7.0)

    def test_constant_features_single_leaf(self):
        X = np.ones((15, 4))
        y = np.arange(15.0)
        tree = DecisionTreeRegressor(rng=0).fit(X, y)
        assert tree.node_count == 1
        np.testing.assert_allclose(tree.predict(X), y.mean())

    def test_max_depth_limits_depth(self):
        rng = np.random.default_rng(1)
        X = rng.random((200, 2))
        y = rng.random(200)
        tree = DecisionTreeRegressor(max_depth=3, rng=0).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(2)
        X = rng.random((50, 1))
        y = rng.random(50)
        tree = DecisionTreeRegressor(min_samples_leaf=10, rng=0).fit(X, y)
        # Count samples reaching each leaf.
        leaves = {}
        pred_nodes = tree.predict(X)  # values; instead walk via internals
        # Use node assignment by predicting and grouping on leaf value id.
        # Simpler check: no leaf has fewer than 10 training rows.
        node = np.zeros(len(X), dtype=int)
        active = tree._feature[node] != -1
        while active.any():
            rows = np.nonzero(active)[0]
            cur = node[rows]
            go_left = X[rows, tree._feature[cur]] <= tree._threshold[cur]
            node[rows] = np.where(go_left, tree._left[cur], tree._right[cur])
            active[rows] = tree._feature[node[rows]] != -1
        _, counts = np.unique(node, return_counts=True)
        assert counts.min() >= 10

    def test_single_sample(self):
        tree = DecisionTreeRegressor(rng=0).fit(np.array([[1.0]]),
                                                np.array([5.0]))
        assert tree.predict(np.array([[99.0]]))[0] == 5.0


class TestValidation:
    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))

    def test_rejects_mismatched_y(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_predict_wrong_width(self):
        tree = DecisionTreeRegressor(rng=0).fit(np.zeros((5, 2)),
                                                np.arange(5.0))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))

    def test_rejects_bad_splitter(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(splitter="weird")

    def test_rejects_bad_min_samples(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestRandomSplitter:
    def test_random_splitter_fits_signal(self):
        rng = np.random.default_rng(3)
        X = rng.random((300, 3))
        y = 5.0 * (X[:, 0] > 0.5) + rng.normal(0, 0.01, 300)
        tree = DecisionTreeRegressor(splitter="random", rng=4).fit(X, y)
        r2 = 1 - np.sum((tree.predict(X) - y) ** 2) / np.sum((y - y.mean()) ** 2)
        assert r2 > 0.8


class TestFeatureImportances:
    def test_importances_sum_to_one(self):
        rng = np.random.default_rng(5)
        X = rng.random((150, 4))
        y = 3 * X[:, 1] + rng.normal(0, 0.05, 150)
        tree = DecisionTreeRegressor(rng=6).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self):
        rng = np.random.default_rng(7)
        X = rng.random((200, 4))
        y = 10 * X[:, 2] + rng.normal(0, 0.05, 200)
        tree = DecisionTreeRegressor(rng=8).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2


class TestGeneralization:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_interpolates_smooth_function(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((300, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        tree = DecisionTreeRegressor(min_samples_leaf=5, rng=seed).fit(X, y)
        Xq = rng.random((100, 2))
        yq = np.sin(3 * Xq[:, 0]) + Xq[:, 1]
        mse = np.mean((tree.predict(Xq) - yq) ** 2)
        assert mse < 0.05


class TestResolveMaxFeatures:
    def test_none_gives_all(self):
        assert resolve_max_features(None, 44) == 44

    def test_sqrt(self):
        assert resolve_max_features("sqrt", 44) == 6

    def test_log2(self):
        assert resolve_max_features("log2", 44) == 5

    def test_third(self):
        assert resolve_max_features("third", 44) == 14

    def test_fraction(self):
        assert resolve_max_features(0.5, 44) == 22

    def test_int_clamped(self):
        assert resolve_max_features(100, 44) == 44
        assert resolve_max_features(0, 44) == 1

    def test_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            resolve_max_features("auto", 10)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            resolve_max_features(1.5, 10)
