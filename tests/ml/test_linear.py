"""Tests for coordinate-descent Lasso / ElasticNet."""

import numpy as np
import pytest

from repro.ml import ElasticNet, Lasso, LinearRegression


def linear_data(n=200, p=8, seed=0, noise=0.05):
    rng = np.random.default_rng(seed)
    X = rng.random((n, p))
    w = np.zeros(p)
    w[:3] = [3.0, -2.0, 1.5]
    y = X @ w + 0.7 + rng.normal(0, noise, n)
    return X, y, w


class TestLinearRegression:
    def test_recovers_coefficients(self):
        X, y, w = linear_data()
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, w, atol=0.1)
        assert model.intercept_ == pytest.approx(0.7, abs=0.15)

    def test_r2_high(self):
        X, y, _ = linear_data()
        assert LinearRegression().fit(X, y).score(X, y) > 0.95


class TestLasso:
    def test_sparsity_kills_irrelevant_coefficients(self):
        X, y, _ = linear_data(noise=0.01)
        model = Lasso(alpha=0.05).fit(X, y)
        assert np.all(np.abs(model.coef_[3:]) < 0.05)
        assert np.abs(model.coef_[0]) > 1.0

    def test_huge_alpha_zeroes_everything(self):
        X, y, _ = linear_data()
        model = Lasso(alpha=100.0).fit(X, y)
        np.testing.assert_allclose(model.coef_, 0.0, atol=1e-9)
        assert model.intercept_ == pytest.approx(y.mean())

    def test_alpha_zero_matches_least_squares(self):
        X, y, _ = linear_data(n=100)
        l0 = Lasso(alpha=0.0, max_iter=3000, tol=1e-10).fit(X, y)
        ls = LinearRegression().fit(X, y)
        np.testing.assert_allclose(l0.coef_, ls.coef_, atol=1e-3)


class TestElasticNet:
    def test_ridge_limit_shrinks_but_keeps_all(self):
        X, y, _ = linear_data(noise=0.01)
        model = ElasticNet(alpha=0.5, l1_ratio=0.0).fit(X, y)
        assert np.abs(model.coef_[0]) > 0.3
        lasso_like = ElasticNet(alpha=0.5, l1_ratio=1.0).fit(X, y)
        assert np.count_nonzero(np.abs(model.coef_) > 1e-8) >= \
            np.count_nonzero(np.abs(lasso_like.coef_) > 1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticNet(alpha=-1.0)
        with pytest.raises(ValueError):
            ElasticNet(1.0, l1_ratio=1.5)
        with pytest.raises(ValueError):
            ElasticNet().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(RuntimeError):
            ElasticNet().predict(np.zeros((2, 2)))

    def test_constant_feature_handled(self):
        X, y, _ = linear_data(n=80)
        X[:, 4] = 1.0
        model = ElasticNet(0.01).fit(X, y)
        assert np.isfinite(model.coef_).all()

    def test_predict_shape_check(self):
        X, y, _ = linear_data(n=50)
        model = ElasticNet(0.01).fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((3, 2)))

    def test_converges_and_records_iterations(self):
        X, y, _ = linear_data()
        model = ElasticNet(0.01).fit(X, y)
        assert 1 <= model.n_iter_ <= model.max_iter
