"""Tests for report rendering."""

import pytest

from repro.bench import format_series, format_table, section


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["name", "value"], [("a", 1.2345), ("bb", 2.0)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in out and "2.00" in out

    def test_title(self):
        out = format_table(["x"], [("y",)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_custom_float_format(self):
        out = format_table(["v"], [(3.14159,)], float_fmt="{:.4f}")
        assert "3.1416" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("curve", [1, 2], [0.5, 0.25],
                            x_label="iter", y_label="time")
        assert "iter" in out and "time" in out
        assert "0.250" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1.0])


def test_section_heading():
    s = section("Results")
    assert "Results" in s
    assert "=" in s
