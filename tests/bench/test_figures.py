"""Tests for figure-specific computations (small scale)."""

import numpy as np
import pytest

from repro.bench import (collect_lhs_times, model_r2_scores,
                         response_surface, selection_recall_sweep)
from repro.core import ParameterSelector, ROBOTune
from repro.ml import LinearRegression
from repro.tuners import WorkloadObjective
from repro.space import spark_space
from repro.workloads import get_workload


class TestCollectAndModel:
    def test_collect_shapes(self):
        U, y = collect_lhs_times("terasort", "D1", 25, rng=1)
        assert U.shape == (25, 44)
        assert y.shape == (25,)
        assert np.all(y > 0)

    def test_model_scores_returns_all_models(self):
        rng = np.random.default_rng(0)
        U = rng.random((60, 10))
        y = np.exp(2 * U[:, 0] + rng.normal(0, 0.05, 60))
        models = {"Linear": LinearRegression}
        scores = model_r2_scores(U, y, rng=1, models=models)
        assert set(scores) == {"Linear"}
        assert scores["Linear"] > 0.8  # log target linearizes it


class TestRecallSweep:
    def test_sweep_structure(self):
        points = selection_recall_sweep(
            "terasort", ground_truth_samples=60, sample_counts=(40, 20),
            rng=2, selector_kwargs={"n_trees": 40, "n_repeats": 2})
        assert [p.n_samples for p in points] == [60, 40, 20]
        assert points[0].recall == 1.0  # ground truth vs itself
        for p in points:
            assert 0.0 <= p.recall <= 1.0


class TestResponseSurface:
    @pytest.fixture(scope="class")
    def session(self):
        space = spark_space()
        # Force a known reduced space via a pre-seeded selection cache so
        # the surface axes always exist.
        from repro.core import ParameterSelectionCache
        cache = ParameterSelectionCache()
        cache.put("pagerank", ["spark.executor.cores",
                               "spark.executor.memory",
                               "spark.executor.instances"])
        tuner = ROBOTune(selection_cache=cache, rng=3,
                         engine_kwargs={"n_candidates": 64, "refine": False})
        objective = WorkloadObjective(get_workload("pagerank", "D1"), space,
                                      rng=4)
        return tuner.tune(objective, 30, rng=5)

    def test_surface_shapes(self, session):
        surfaces = response_surface(session, at_iterations=(10, 25),
                                    grid=9)
        assert set(surfaces) == {10, 25}
        for surf in surfaces.values():
            assert surf["mean"].shape == (9, 9)
            assert surf["xs"].shape == (9,)
            assert np.all(np.isfinite(surf["mean"]))

    def test_points_prefix_grows(self, session):
        surfaces = response_surface(session, at_iterations=(10, 25), grid=5)
        assert len(surfaces[10]["points"]) == 10
        assert len(surfaces[25]["points"]) == 25

    def test_unknown_axis_rejected(self, session):
        with pytest.raises(KeyError):
            response_surface(session, x_param="spark.locality.wait")
