"""Tests for experiment renderers on synthetic study data."""

import numpy as np
import pytest

from repro.bench import (ComparisonStudy, StudyResult, iterations_to_within,
                         render_fig3, render_fig4, render_fig5, render_fig6,
                         render_fig7, render_fig8, render_table1,
                         render_table2)
from repro.bench.figures import RecallPoint
from repro.bench.harness import SessionRecord


def fake_record(tuner, workload="pagerank", dataset="D1", trial=0,
                best=30.0, cost=3000.0, n=10, seed=0):
    rng = np.random.default_rng(seed)
    times = rng.uniform(best, best * 4, n)
    curve = np.minimum.accumulate(rng.uniform(best, best * 3, n))
    curve[-1] = best
    return SessionRecord(
        tuner=tuner, workload=workload, dataset=dataset, trial=trial,
        best_time_s=best, search_cost_s=cost, selection_cost_s=0.0,
        cache_hit=False, curve=curve, exec_times=times,
        cores_mem=np.column_stack([rng.integers(1, 33, n),
                                   rng.integers(1024, 184320, n)]),
        statuses=("success",) * n)


@pytest.fixture()
def fake_study():
    study = StudyResult()
    for tuner, best, cost in (("ROBOTune", 25.0, 2000.0),
                              ("BestConfig", 30.0, 3300.0),
                              ("Gunther", 31.0, 3100.0),
                              ("RandomSearch", 30.0, 3200.0)):
        for ds in ("D1", "D3"):
            study.records.append(fake_record(tuner, dataset=ds, best=best,
                                             cost=cost, seed=hash((tuner, ds)) % 100))
    return study


class TestRenderers:
    def test_table1_lists_all_workloads(self):
        out = render_table1()
        for ab in ("PR", "KM", "CC", "LR", "TS"):
            assert ab in out

    def test_fig3_scales_to_random_search(self, fake_study):
        out = render_fig3(fake_study)
        assert "ROBOTune" in out
        # ROBOTune's ratio 25/30 should appear.
        assert "0.83" in out
        assert "geo-mean" in out

    def test_fig4_cost_ratios(self, fake_study):
        out = render_fig4(fake_study)
        assert "0.62" in out  # 2000/3200

    def test_fig5_medians(self, fake_study):
        out = render_fig5(fake_study, workloads=["pagerank"])
        assert "median/ROBOTune" in out

    def test_fig6_iteration_table(self, fake_study):
        out = render_fig6(fake_study, checkpoints=(1, 5, 10))
        assert "PR-D1" in out and "PR-D3" in out

    def test_table2_counts(self, fake_study):
        out = render_table2(fake_study)
        assert "Within 1%" in out
        assert "pagerank" in out

    def test_fig8_concentration(self, fake_study):
        out = render_fig8(fake_study, dataset="D3")
        assert "densest-cell share" in out

    def test_fig7_recall_table(self):
        pts = {"pagerank": [RecallPoint("pagerank", 150, 1.0, ("a",)),
                            RecallPoint("pagerank", 100, 1.0, ("a",)),
                            RecallPoint("pagerank", 50, 0.5, ("b",))]}
        out = render_fig7(pts)
        assert "150" in out and "average" in out
        assert "0.50" in out


class TestIterationsToWithin:
    def test_basic(self):
        curve = np.array([100.0, 50.0, 22.0, 20.0])
        assert iterations_to_within(curve, 0.0) == 4
        assert iterations_to_within(curve, 0.10) == 3
        assert iterations_to_within(curve, 10.0) == 1

    def test_all_inf_returns_none(self):
        assert iterations_to_within(np.array([np.inf, np.inf]), 0.05) is None
