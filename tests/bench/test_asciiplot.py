"""Tests for ASCII heatmap/scatter rendering."""

import numpy as np
import pytest

from repro.bench import ascii_heatmap, ascii_scatter


class TestHeatmap:
    def test_dimensions(self):
        M = np.arange(12, dtype=float).reshape(3, 4)
        out = ascii_heatmap(M)
        rows = [ln for ln in out.splitlines() if ln.startswith("|")]
        assert len(rows) == 3
        assert all(len(r) == 4 + 2 for r in rows)

    def test_invert_marks_low_values_dense(self):
        M = np.array([[0.0, 100.0]])
        out = ascii_heatmap(M, invert=True)
        row = [ln for ln in out.splitlines() if ln.startswith("|")][0]
        assert row[1] == "@"   # low value -> densest glyph
        assert row[2] == " "   # high value -> lightest glyph

    def test_points_overlay(self):
        M = np.zeros((4, 4))
        out = ascii_heatmap(M, points=np.array([[1, 2]]))
        assert "o" in out

    def test_constant_matrix_no_crash(self):
        out = ascii_heatmap(np.full((2, 2), 7.0))
        assert out

    def test_labels_rendered(self):
        out = ascii_heatmap(np.zeros((3, 5)), x_labels=["1", "32"],
                            y_labels=["1g", "180g"], title="surface")
        assert "surface" in out
        assert "1g" in out and "180g" in out
        assert "32" in out

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))


class TestScatter:
    def test_density_digits(self):
        x = np.zeros(5)
        y = np.zeros(5)
        out = ascii_scatter(x, y, width=10, height=4)
        assert "5" in out

    def test_range_footer(self):
        out = ascii_scatter(np.array([1.0, 32.0]), np.array([1.0, 180.0]),
                            x_label="cores", y_label="mem")
        assert "cores" in out and "[1, 32]" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            ascii_scatter(np.array([]), np.array([]))
