"""ComparisonStudy trace_dir: per-session JSONL traces + aggregation."""

import pytest

from repro.bench import ComparisonStudy
from repro.obs import load_trace, render_aggregate, validate_trace


@pytest.fixture(scope="module")
def traced_study(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    study = ComparisonStudy(budget=10, trials=1, workloads=["terasort"],
                            datasets=["D1", "D2"],
                            tuners=["RandomSearch", "BestConfig"],
                            fault_rate=0.15, base_seed=3,
                            trace_dir=trace_dir).run()
    return study, trace_dir


class TestTraceDir:
    def test_every_session_gets_a_valid_trace(self, traced_study):
        study, trace_dir = traced_study
        assert len(study.records) == 4
        for rec in study.records:
            assert rec.trace_path is not None
            assert (f"{rec.tuner}-{rec.workload}-{rec.dataset}"
                    f"-trial{rec.trial}-s") in rec.trace_path
            records = load_trace(rec.trace_path)
            assert validate_trace(records) == []
            meta = records[0]
            assert meta["tuner"] == rec.tuner
            assert meta["dataset"] == rec.dataset

    def test_trace_eval_count_matches_the_session(self, traced_study):
        study, _ = traced_study
        for rec in study.records:
            events = [r for r in load_trace(rec.trace_path)
                      if r.get("kind") == "event"
                      and r["type"] == "eval.result"]
            assert len(events) == len(rec.statuses) == 10

    def test_trace_summaries_feed_the_aggregate(self, traced_study):
        study, _ = traced_study
        summaries = study.trace_summaries()
        assert len(summaries) == 4
        table = render_aggregate(summaries)
        assert "RandomSearch" in table and "BestConfig" in table

    def test_two_studies_share_a_trace_dir_without_collision(self, tmp_path):
        # Regression: filenames once carried only the trial index, so a
        # second study with a different base_seed into the same directory
        # crashed on the writer's refuse-to-append guard.
        kwargs = dict(budget=5, trials=1, workloads=["terasort"],
                      datasets=["D1"], tuners=["RandomSearch"],
                      trace_dir=tmp_path)
        first = ComparisonStudy(base_seed=1, **kwargs).run()
        second = ComparisonStudy(base_seed=2, **kwargs).run()
        paths = {first.records[0].trace_path, second.records[0].trace_path}
        assert len(paths) == 2  # session seed keeps the names distinct

    def test_untraced_study_has_no_trace_paths(self):
        study = ComparisonStudy(budget=5, trials=1, workloads=["terasort"],
                                datasets=["D1"], tuners=["RandomSearch"],
                                base_seed=0).run()
        assert study.records[0].trace_path is None
        assert study.trace_summaries() == []
