"""Tests for the comparison-study harness (at miniature scale)."""

import numpy as np
import pytest

from repro.bench import ComparisonStudy, StudyResult


@pytest.fixture(scope="module")
def mini_study():
    """A 2-tuner, 1-workload, 2-dataset, 1-trial study (fast)."""
    study = ComparisonStudy(budget=12, trials=1, workloads=["terasort"],
                            datasets=["D1", "D2"],
                            tuners=["RandomSearch", "BestConfig"],
                            base_seed=3).run()
    return study


class TestStudyExecution:
    def test_grid_complete(self, mini_study):
        assert len(mini_study.records) == 2 * 2  # tuners x datasets

    def test_record_fields(self, mini_study):
        rec = mini_study.records[0]
        assert rec.curve.shape == (12,)
        assert rec.exec_times.shape == (12,)
        assert rec.cores_mem.shape == (12, 2)
        assert len(rec.statuses) == 12
        assert rec.best_time_s > 0
        assert rec.search_cost_s >= rec.best_time_s

    def test_filter_and_means(self, mini_study):
        rs = mini_study.filter(tuner="RandomSearch")
        assert len(rs) == 2
        assert mini_study.mean_best_time("RandomSearch", "terasort",
                                         "D1") > 0
        with pytest.raises(KeyError):
            mini_study.mean_best_time("RandomSearch", "terasort", "D9")

    def test_reproducible_given_base_seed(self):
        kw = dict(budget=8, trials=1, workloads=["terasort"],
                  datasets=["D1"], tuners=["RandomSearch"], base_seed=11)
        a = ComparisonStudy(**kw).run()
        b = ComparisonStudy(**kw).run()
        assert a.records[0].best_time_s == b.records[0].best_time_s

    def test_unknown_tuner_rejected(self):
        with pytest.raises(ValueError):
            ComparisonStudy(tuners=["MagicTuner"])

    def test_progress_callback_invoked(self):
        seen = []
        ComparisonStudy(budget=5, trials=1, workloads=["terasort"],
                        datasets=["D1"], tuners=["RandomSearch"],
                        base_seed=0).run(progress=seen.append)
        assert len(seen) == 1
        assert "RandomSearch" in seen[0]


class TestROBOTuneSessions:
    def test_warm_datasets_hit_selection_cache(self):
        study = ComparisonStudy(
            budget=25, trials=1, workloads=["terasort"],
            datasets=["D1", "D2"], tuners=["ROBOTune"], base_seed=5,
        ).run()
        d1 = study.filter(dataset="D1")[0]
        d2 = study.filter(dataset="D2")[0]
        assert not d1.cache_hit
        assert d2.cache_hit
        assert d1.selection_cost_s > 0
        assert d2.selection_cost_s == 0.0


class TestAsyncWorkers:
    def test_async_study_runs(self):
        study = ComparisonStudy(
            budget=20, trials=1, workloads=["terasort"], datasets=["D1"],
            tuners=["ROBOTune"], base_seed=7, async_workers=2,
        ).run()
        assert len(study.records) == 1
        assert study.records[0].curve.shape == (20,)

    def test_async_single_worker_matches_sync(self):
        kw = dict(budget=20, trials=1, workloads=["terasort"],
                  datasets=["D1"], tuners=["ROBOTune"], base_seed=9)
        sync = ComparisonStudy(**kw).run()
        async1 = ComparisonStudy(**kw, async_workers=1).run()
        np.testing.assert_array_equal(sync.records[0].curve,
                                      async1.records[0].curve)

    def test_negative_async_workers_rejected(self):
        with pytest.raises(ValueError):
            ComparisonStudy(async_workers=-1)

    def test_async_and_batch_mutually_exclusive(self):
        with pytest.raises(ValueError):
            ComparisonStudy(async_workers=2, batch_size=4)


class TestSupervision:
    def test_supervise_requires_async_workers(self):
        from repro.supervise import SupervisePolicy
        with pytest.raises(ValueError, match="async_workers"):
            ComparisonStudy(supervise=SupervisePolicy())

    def test_supervised_study_runs(self):
        from repro.supervise import SupervisePolicy
        study = ComparisonStudy(
            budget=16, trials=1, workloads=["terasort"], datasets=["D1"],
            tuners=["ROBOTune"], base_seed=11, async_workers=2,
            supervise=SupervisePolicy(eval_timeout_s=30.0),
        ).run()
        assert len(study.records) == 1
        assert study.records[0].curve.shape == (16,)
