"""Tests for the SVG chart writer (structure validated via XML parsing)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.bench.svgplot import svg_grouped_bars, svg_heatmap, svg_line_chart

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestGroupedBars:
    def test_valid_svg_with_expected_bars(self):
        svg = svg_grouped_bars(["PR-D1", "PR-D2"],
                               {"ROBOTune": [0.9, 0.8], "RS": [1.0, 1.0]},
                               title="Fig 3", baseline=1.0)
        root = parse(svg)
        rects = root.findall(f"{NS}rect")
        # background + 4 bars + 2 legend swatches
        assert len(rects) >= 7
        assert "Fig 3" in svg

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            svg_grouped_bars(["a", "b"], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_grouped_bars([], {})

    def test_baseline_draws_dashed_line(self):
        svg = svg_grouped_bars(["a"], {"s": [2.0]}, baseline=1.0)
        assert "stroke-dasharray" in svg


class TestLineChart:
    def test_polyline_per_series(self):
        svg = svg_line_chart({
            "A": ([1, 2, 3], [3.0, 2.0, 1.0]),
            "B": ([1, 2, 3], [4.0, 4.0, 4.0]),
        }, title="Fig 6")
        root = parse(svg)
        assert len(root.findall(f"{NS}polyline")) == 2

    def test_infinite_values_skipped(self):
        svg = svg_line_chart({"A": ([1, 2, 3], [np.inf, 2.0, 1.0])})
        root = parse(svg)
        poly = root.find(f"{NS}polyline")
        assert len(poly.get("points").split()) == 2

    def test_log_scale(self):
        svg = svg_line_chart({"A": ([1, 2], [10.0, 1000.0])}, log_y=True)
        assert parse(svg) is not None

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            svg_line_chart({"A": ([1, 2], [0.0, 5.0])}, log_y=True)

    def test_all_inf_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({"A": ([1], [np.inf])})


class TestHeatmap:
    def test_cell_count(self):
        svg = svg_heatmap(np.arange(6.0).reshape(2, 3))
        root = parse(svg)
        rects = root.findall(f"{NS}rect")
        assert len(rects) == 1 + 6  # background + cells

    def test_points_overlay(self):
        svg = svg_heatmap(np.zeros((3, 3)), points=np.array([[1, 1]]))
        root = parse(svg)
        assert len(root.findall(f"{NS}circle")) == 1

    def test_labels(self):
        svg = svg_heatmap(np.zeros((2, 2)), x_labels=["1c", "32c"],
                          y_labels=["1g", "180g"])
        assert "32c" in svg and "180g" in svg

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            svg_heatmap(np.zeros(4))

    def test_constant_matrix(self):
        assert parse(svg_heatmap(np.full((2, 2), 5.0))) is not None
