"""Tests for the §5.2 default-comparison renderer (no study needed)."""

import pytest

from repro.bench.experiments import run_default_comparison


class TestRenderer:
    @pytest.fixture(scope="class")
    def report(self):
        return run_default_comparison(study=None, rng=5)

    def test_all_15_cells_present(self, report):
        for ab in ("PR", "KM", "CC", "LR", "TS"):
            for ds in ("D1", "D2", "D3"):
                assert f"{ab}-{ds}" in report

    def test_paper_failure_narrative(self, report):
        lines = {ln.split()[0]: ln for ln in report.splitlines()
                 if "-D" in ln}
        for cell in ("PR-D1", "PR-D2", "PR-D3", "CC-D1", "CC-D2", "CC-D3",
                     "TS-D2", "TS-D3"):
            assert "default fails" in lines[cell], cell
        for cell in ("KM-D1", "KM-D2", "KM-D3", "LR-D1", "LR-D2", "LR-D3",
                     "TS-D1"):
            assert "success" in lines[cell], cell

    def test_without_study_no_speedups(self, report):
        assert "x speedup" not in report
