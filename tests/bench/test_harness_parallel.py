"""Worker-count invariance of the comparison-study harness."""

import numpy as np

from repro.bench import ComparisonStudy


def small_study(**kw):
    return ComparisonStudy(budget=10, trials=2, workloads=["kmeans"],
                           datasets=["D1", "D2"],
                           tuners=["RandomSearch", "Gunther"], **kw)


def test_parallel_sweeps_match_serial():
    serial = small_study().run()
    par = small_study(n_jobs=2, parallel_backend="thread").run()
    assert len(serial.records) == len(par.records)
    for a, b in zip(serial.records, par.records):
        assert (a.tuner, a.workload, a.dataset, a.trial) \
            == (b.tuner, b.workload, b.dataset, b.trial)
        assert a.best_time_s == b.best_time_s
        assert a.search_cost_s == b.search_cost_s
        np.testing.assert_array_equal(a.curve, b.curve)
        assert a.statuses == b.statuses


def test_progress_callback_sees_every_session():
    lines = []
    small_study(n_jobs=2, parallel_backend="thread").run(lines.append)
    assert len(lines) == 2 * 1 * 2 * 2  # trials * workloads * tuners * datasets
