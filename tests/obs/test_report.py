"""Tests for trace loading, schema validation and the summary renderers."""

import json

import pytest

from repro.obs import (EVENT_TYPES, InMemorySink, Tracer, load_trace,
                       render_aggregate, render_summary, summarize,
                       validate_record, validate_trace)
from repro.obs.events import TRACE_SCHEMA_VERSION


def fixed_clock():
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


def sample_records():
    """A small but representative trace, built through the real tracer."""
    sink = InMemorySink()
    tracer = Tracer(sink, clock=fixed_clock(),
                    meta={"tuner": "ROBOTune", "seed": 1})
    with tracer.span("tune", budget=4):
        tracer.emit("eval.result", {"i": 0, "objective": 12.0,
                                    "status": "success"})
        tracer.emit("eval.result", {"i": 1, "objective": 8.0,
                                    "status": "timeout"})
        tracer.emit("hedge.probs", {"probs": [0.5, 0.5],
                                    "names": ["EI", "LCB"]})
        tracer.emit("hedge.probs", {"probs": [0.7, 0.3],
                                    "names": ["EI", "LCB"]})
        tracer.emit("gp.fit", {"n": 2})
        tracer.emit("guard.kill", {"i": 1})
        tracer.emit("memo.hit", {"store": "selection_cache"})
        tracer.emit("memo.store", {"store": "config_buffer"})
        tracer.emit("fault.injected", {"index": 1})
        tracer.emit("retry.attempt", {"index": 1})
        tracer.emit("bo.iteration", {"iteration": 0, "fallback": True})
    tracer.count("evals", 2)
    tracer.close()
    return sink.records


class TestValidation:
    def test_sample_trace_is_valid(self):
        assert validate_trace(sample_records()) == []

    def test_empty_trace_is_invalid(self):
        assert validate_trace([]) == ["empty trace"]

    def test_meta_must_come_first(self):
        records = sample_records()
        problems = validate_trace(records[1:])
        assert any("must start with a meta record" in p for p in problems)

    def test_schema_mismatch_is_reported(self):
        records = sample_records()
        records[0] = dict(records[0], schema=TRACE_SCHEMA_VERSION + 1)
        assert any("schema" in p for p in validate_trace(records))

    def test_unknown_event_type_is_reported(self):
        record = {"kind": "event", "id": 0, "t": 0.0, "span": None,
                  "type": "no.such.event", "data": {}}
        assert any("unknown event type" in p for p in validate_record(record))

    def test_unknown_kind_is_reported(self):
        assert validate_record({"kind": "bogus"}) \
            == ["unknown record kind: 'bogus'"]

    def test_non_increasing_ids_are_reported(self):
        records = sample_records()
        events = [r for r in records if r["kind"] == "event"]
        events[2]["id"] = events[1]["id"]
        assert any("not increasing" in p for p in validate_trace(records))

    def test_dangling_span_reference_is_reported(self):
        records = sample_records()
        events = [r for r in records if r["kind"] == "event"]
        events[-1]["span"] = 10_000
        assert any("never started" in p for p in validate_trace(records))

    def test_catalog_entries_are_documented(self):
        assert all(isinstance(doc, str) and doc
                   for doc in EVENT_TYPES.values())


class TestLoadTrace:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = sample_records()
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert load_trace(path) == records

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = sample_records()
        text = "".join(json.dumps(r) + "\n" for r in records)
        path.write_text(text + '{"kind": "event", "id":')
        assert load_trace(path) == records

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.jsonl")


class TestSummarize:
    def test_folds_every_counted_family(self):
        s = summarize(sample_records())
        assert s.tuner == "ROBOTune"
        assert s.evals == 2
        assert s.eval_failures == 1
        assert s.best_objective == 12.0     # the timeout result is censored
        assert s.guard_kills == 1
        assert s.memo_hits == 1 and s.memo_stores == 1
        assert s.faults_injected == 1 and s.retries == 1
        assert s.gp_fits == 1
        assert s.fallbacks == 1
        assert s.acquisition_names == ["EI", "LCB"]
        assert s.hedge_trajectory == [[0.5, 0.5], [0.7, 0.3]]
        assert s.span_times["tune"][1] == 1
        assert s.counters == {"evals": 2}

    def test_render_summary_mentions_the_headline_numbers(self):
        text = render_summary(summarize(sample_records()))
        assert "tuner=ROBOTune" in text
        assert "evaluations: 2 (1 failed)" in text
        assert "1 guard kills" in text
        assert "1 faults injected, 1 retries" in text
        assert "hedge probabilities" in text
        assert "EI" in text and "LCB" in text
        assert "tune" in text   # time-by-component section

    def test_render_aggregate_groups_by_tuner(self):
        a = summarize(sample_records())
        b = summarize(sample_records())
        b.meta["tuner"] = "RandomSearch"
        text = render_aggregate([a, b, a])
        lines = text.splitlines()
        assert "ROBOTune" in text and "RandomSearch" in text
        robo = next(line for line in lines if line.startswith("ROBOTune"))
        assert " 2 " in robo        # two ROBOTune sessions
        assert render_aggregate([]) == "no traces"
