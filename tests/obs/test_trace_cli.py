"""CLI tracing: --trace / --trace-summary on tune and compare.

The acceptance bar: a traced ``tune`` run writes a schema-valid JSONL
trace covering the bo/gp/guard/hedge/memo/fault/parallel event families,
and ``--trace-summary`` renders the fold-up.
"""

from repro.cli import main
from repro.obs import load_trace, validate_trace


class TestTuneTracing:
    def test_traced_run_covers_the_event_families(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        code = main(["tune", "--workload", "terasort", "--budget", "25",
                     "--seed", "3", "--faults", "0.3",
                     "--trace", str(trace), "--trace-summary"])
        out = capsys.readouterr().out
        assert code == 0
        records = load_trace(trace)
        assert validate_trace(records) == []
        types = {r["type"] for r in records if r.get("kind") == "event"}
        for family in ("bo.iteration", "hedge.probs", "acq.winner", "gp.fit",
                       "guard.threshold", "memo.miss", "memo.store",
                       "selection.params", "fault.injected", "parallel.map",
                       "eval.result", "span.start", "span.end"):
            assert family in types, f"missing {family}"
        # The trace ends with the metrics fold-up.
        assert records[-1]["kind"] == "metrics"
        assert records[-1]["counters"]["evals"] == 25 + 100  # tune + selection
        # And the summary is printed.
        assert f"trace written to {trace}" in out
        assert "trace summary" in out
        assert "time by component" in out
        assert "hedge probabilities" in out

    def test_summary_without_file_needs_no_path(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "20",
                     "--seed", "2", "--trace-summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary" in out
        assert "trace written" not in out

    def test_existing_trace_file_is_refused(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text('{"kind": "meta", "schema": 1}\n')
        code = main(["tune", "--workload", "terasort", "--budget", "5",
                     "--trace", str(trace)])
        assert code == 2
        assert "already holds records" in capsys.readouterr().err

    def test_untraced_run_prints_no_summary(self, capsys):
        code = main(["tune", "--workload", "terasort", "--budget", "20",
                     "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace" not in out


class TestCompareTracing:
    def test_per_session_traces_and_aggregate(self, capsys, tmp_path):
        trace_dir = tmp_path / "traces"
        code = main(["compare", "--workload", "terasort", "--budget", "12",
                     "--trials", "1", "--seed", "3",
                     "--trace", str(trace_dir), "--trace-summary"])
        out = capsys.readouterr().out
        assert code == 0
        files = sorted(p.name for p in trace_dir.glob("*.jsonl"))
        assert files == ["BestConfig-trial0.jsonl", "Gunther-trial0.jsonl",
                         "ROBOTune-trial0.jsonl", "RandomSearch-trial0.jsonl"]
        for path in trace_dir.glob("*.jsonl"):
            records = load_trace(path)
            assert validate_trace(records) == []
            assert records[0]["tuner"] == path.name.split("-")[0]
        # The aggregate table groups sessions by tuner.
        assert "sessions" in out
        for tuner in ("ROBOTune", "BestConfig", "Gunther", "RandomSearch"):
            assert tuner in out
