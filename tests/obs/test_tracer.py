"""Unit tests for the tracer, the null tracer and the sinks."""

import json
import threading

import numpy as np
import pytest

from repro.obs import (NULL_TRACER, InMemorySink, JsonlTraceWriter, NullTracer,
                       Tracer, as_tracer, validate_trace)


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, step: float = 0.5):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def make(**kwargs):
    sink = InMemorySink()
    return Tracer(sink, clock=FakeClock(), **kwargs), sink


class TestTracer:
    def test_meta_record_opens_the_trace(self):
        tracer, sink = make(meta={"tuner": "ROBOTune", "seed": 7})
        tracer.close()
        first = sink.records[0]
        assert first["kind"] == "meta"
        assert isinstance(first["schema"], int)
        assert first["tuner"] == "ROBOTune"
        assert first["seed"] == 7

    def test_emit_assigns_increasing_ids(self):
        tracer, sink = make()
        ids = [tracer.emit("eval.result", {"i": i}) for i in range(5)]
        tracer.close()
        assert ids == [0, 1, 2, 3, 4]
        assert validate_trace(sink.records) == []

    def test_timestamps_use_the_injected_clock(self):
        tracer, sink = make()
        tracer.emit("eval.result", {})
        tracer.emit("eval.result", {})
        t = [r["t"] for r in sink.records if r.get("kind") == "event"]
        # FakeClock steps 0.5 per read; t0 was read at construction.
        assert t == [0.5, 1.0]

    def test_span_nesting(self):
        tracer, sink = make()
        with tracer.span("tune", budget=10):
            tracer.emit("eval.result", {"i": 0})
            with tracer.span("bo"):
                tracer.emit("bo.iteration", {"iteration": 0})
        tracer.emit("eval.result", {"i": 1})
        tracer.close()
        events = sink.events()
        starts = [e for e in events if e["type"] == "span.start"]
        outer, inner = starts
        assert outer["data"]["name"] == "tune"
        assert outer["data"]["budget"] == 10
        assert outer["span"] is None
        assert inner["span"] == outer["id"]
        by_type = {e["type"]: e for e in events}
        assert by_type["bo.iteration"]["span"] == inner["id"]
        first_eval = next(e for e in events if e["type"] == "eval.result")
        assert first_eval["span"] == outer["id"]
        # The trailing emit is outside every span again.
        assert events[-1]["span"] is None
        ends = [e for e in events if e["type"] == "span.end"]
        assert [e["data"]["name"] for e in ends] == ["bo", "tune"]
        assert all(e["data"]["dur"] > 0 for e in ends)
        assert validate_trace(sink.records) == []

    def test_counters_and_timers_flush_into_metrics_record(self):
        tracer, sink = make()
        tracer.count("evals")
        tracer.count("evals", 2)
        with tracer.timer("gp.fit"):
            pass
        with tracer.timer("gp.fit"):
            pass
        assert tracer.counters == {"evals": 3}
        assert tracer.timers["gp.fit"]["count"] == 2
        assert tracer.timers["gp.fit"]["total_s"] > 0
        tracer.close()
        metrics = sink.records[-1]
        assert metrics["kind"] == "metrics"
        assert metrics["counters"] == {"evals": 3}
        assert metrics["timers"]["gp.fit"]["count"] == 2

    def test_close_is_idempotent_and_drops_late_events(self):
        tracer, sink = make()
        tracer.emit("eval.result", {})
        tracer.close()
        n = len(sink.records)
        assert tracer.emit("eval.result", {}) == -1
        tracer.close()
        assert len(sink.records) == n

    def test_payloads_are_scrubbed_to_json_types(self):
        tracer, sink = make()
        tracer.emit("gp.fit", {"n": np.int64(3),
                               "theta": np.array([1.0, 2.0]),
                               "nested": {"y": np.float32(0.5)}})
        tracer.close()
        text = json.dumps(sink.records)  # must not raise
        data = sink.events()[0]["data"]
        assert data["n"] == 3 and data["theta"] == [1.0, 2.0]
        assert isinstance(data["nested"]["y"], float)
        assert "numpy" not in text

    def test_fans_out_to_multiple_sinks(self):
        a, b = InMemorySink(), InMemorySink()
        tracer = Tracer([a, b], clock=FakeClock())
        tracer.emit("eval.result", {})
        tracer.close()
        assert a.records == b.records

    def test_thread_safety_and_per_thread_spans(self):
        tracer, sink = make()

        def worker():
            for _ in range(50):
                tracer.emit("eval.result", {})

        with tracer.span("tune"):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tracer.close()
        events = sink.events()
        ids = [e["id"] for e in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        # Worker threads have their own (empty) span stack: their events
        # must not claim membership of the main thread's span.
        workers = [e for e in events if e["type"] == "eval.result"]
        assert len(workers) == 200
        assert all(e["span"] is None for e in workers)


class TestNullTracer:
    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer, _ = make()
        assert as_tracer(tracer) is tracer

    def test_all_methods_are_no_ops(self):
        tracer = NullTracer()
        assert tracer.active is False
        assert tracer.emit("eval.result", {"i": 0}) is None
        tracer.count("evals")
        with tracer.span("tune", budget=5):
            with tracer.timer("gp.fit"):
                pass
        tracer.close()


class TestJsonlTraceWriter:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlTraceWriter(path), clock=FakeClock(),
                        meta={"tuner": "x"})
        tracer.emit("eval.result", {"i": 0})
        tracer.close()
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["meta", "event", "metrics"]
        assert validate_trace(records) == []

    def test_refuses_non_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "meta", "schema": 1}\n')
        with pytest.raises(FileExistsError):
            JsonlTraceWriter(path)

    def test_accepts_empty_existing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.touch()
        JsonlTraceWriter(path).write({"kind": "meta", "schema": 1})

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        writer.write({"kind": "meta", "schema": 1})
        writer.close()
        assert path.exists()
