"""Golden-trace determinism (the observability contract).

Two runs with the same seed must produce *identical* event sequences —
same ids, order and payloads — once the timing envelope (``t``, span
``dur``, the timers registry) is stripped: every other payload field is a
pure function of the tuner's decision sequence.  And tracing must be
purely observational: a traced run's evaluations must be bit-identical
to an untraced run of the same seed.
"""

import hashlib

import numpy as np
import pytest

from repro.core.selection import ParameterSelector
from repro.core.tuner import ROBOTune
from repro.obs import InMemorySink, Tracer, validate_trace
from repro.tuners.bestconfig import BestConfig
from repro.tuners.gunther import Gunther
from repro.tuners.random_search import RandomSearch
from repro.tuners.synthetic import SyntheticObjective, synthetic_space


def make_tuner(name: str):
    """Fresh tuner + seed; fresh so ROBOTune's stores never carry over."""
    if name == "ROBOTune":
        return ROBOTune(selector=ParameterSelector(n_samples=12, n_trees=25,
                                                   n_repeats=3, rng=7),
                        init_samples=6, rng=0), 0
    if name == "BestConfig":
        return BestConfig(round_size=10), 1
    if name == "Gunther":
        return Gunther(population=8), 2
    return RandomSearch(), 3


def run(name: str, budget: int = 25, traced: bool = True):
    tuner, seed = make_tuner(name)
    objective = SyntheticObjective(synthetic_space(6), n_effective=2,
                                   name="golden", rng=seed + 1)
    sink = tracer = None
    if traced:
        sink = InMemorySink()
        tracer = Tracer(sink, meta={"tuner": name, "seed": seed})
    result = tuner.tune(objective, budget, rng=seed, tracer=tracer)
    if tracer is not None:
        tracer.close()
    return result, sink


def normalized(records):
    """The trace minus its timing envelope (t, dur, timer seconds)."""
    out = []
    for r in records:
        if r["kind"] == "meta":
            out.append(("meta", tuple(sorted(r.items()))))
        elif r["kind"] == "event":
            data = {k: v for k, v in r["data"].items() if k != "dur"}
            out.append((r["id"], r["span"], r["type"], repr(sorted(
                data.items(), key=lambda kv: kv[0]))))
        else:
            counters = tuple(sorted(r["counters"].items()))
            timer_counts = tuple(sorted(
                (name, t["count"]) for name, t in r["timers"].items()))
            out.append(("metrics", counters, timer_counts))
    return out


def digest(result) -> str:
    h = hashlib.sha256()
    for e in result.evaluations:
        h.update(np.ascontiguousarray(
            np.asarray(e.vector, dtype=float)).tobytes())
        h.update(np.float64(e.objective).tobytes())
    return h.hexdigest()


TUNERS = ["ROBOTune", "BestConfig", "Gunther", "RandomSearch"]


@pytest.mark.parametrize("name", TUNERS)
def test_same_seed_runs_emit_identical_event_sequences(name):
    _, sink_a = run(name)
    _, sink_b = run(name)
    assert validate_trace(sink_a.records) == []
    assert normalized(sink_a.records) == normalized(sink_b.records)


@pytest.mark.parametrize("name", TUNERS)
def test_tracing_never_changes_the_decisions(name):
    traced, _ = run(name, traced=True)
    untraced, _ = run(name, traced=False)
    assert digest(traced) == digest(untraced)


def test_timing_fields_do_vary_between_runs():
    """Sanity check on the normalization itself: raw traces differ (wall
    time is real), so equality above is meaningful only post-strip."""
    _, sink_a = run("RandomSearch")
    _, sink_b = run("RandomSearch")
    t_a = [r["t"] for r in sink_a.records if r.get("kind") == "event"]
    t_b = [r["t"] for r in sink_b.records if r.get("kind") == "event"]
    assert t_a != t_b
