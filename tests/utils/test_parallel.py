"""Tests for the shared parallel-execution helper."""

import os
from unittest import mock

import pytest

from repro.utils.parallel import (ENV_JOBS, available_cpus, parallel_map,
                                  resolve_n_jobs)


def _square(x):
    return x * x


class TestResolveNJobs:
    def test_default_is_serial(self):
        with mock.patch.dict(os.environ, {}, clear=False):
            os.environ.pop(ENV_JOBS, None)
            assert resolve_n_jobs(None) == 1

    def test_explicit_value(self):
        assert resolve_n_jobs(3) == 3

    def test_env_var_fallback(self):
        with mock.patch.dict(os.environ, {ENV_JOBS: "4"}):
            assert resolve_n_jobs(None) == 4

    def test_explicit_overrides_env(self):
        with mock.patch.dict(os.environ, {ENV_JOBS: "4"}):
            assert resolve_n_jobs(2) == 2

    def test_negative_counts_back_from_cpus(self):
        assert resolve_n_jobs(-1) == available_cpus()

    def test_too_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(-available_cpus() - 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)

    def test_bad_env_var_rejected(self):
        with mock.patch.dict(os.environ, {ENV_JOBS: "zero"}):
            with pytest.raises(ValueError):
                resolve_n_jobs(None)


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1


class TestParallelMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_preserves_order(self, backend):
        items = list(range(17))
        assert parallel_map(_square, items, n_jobs=2, backend=backend) \
            == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_single_item_short_circuits(self):
        assert parallel_map(_square, [5], n_jobs=8) == [25]

    def test_serial_equals_parallel(self):
        items = list(range(40))
        serial = parallel_map(_square, items, n_jobs=1)
        threaded = parallel_map(_square, items, n_jobs=4, backend="thread")
        assert serial == threaded

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], n_jobs=2, backend="mpi")

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2, 3], n_jobs=2, backend="thread")

    def test_chunksize_accepted(self):
        items = list(range(10))
        out = parallel_map(_square, items, n_jobs=2, backend="process",
                           chunksize=3)
        assert out == [x * x for x in items]
