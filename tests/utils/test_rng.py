"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils import as_generator, spawn


class TestAsGenerator:
    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_deterministic(self):
        assert as_generator(42).random() == as_generator(42).random()

    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        kids = spawn(0, 3)
        vals = [k.random() for k in kids]
        assert len(set(vals)) == 3

    def test_deterministic_given_parent_seed(self):
        a = [g.random() for g in spawn(7, 4)]
        b = [g.random() for g in spawn(7, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(0, -1)
