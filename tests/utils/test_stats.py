"""Tests for the statistics helpers."""

import numpy as np
import pytest

from repro.utils import geometric_mean, percentile, summarize


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ratio_symmetry(self):
        """gm(x) * gm(1/x) == 1: the property that makes it right for
        speedup ratios."""
        xs = [1.3, 0.7, 2.0, 1.1]
        assert geometric_mean(xs) * geometric_mean([1 / x for x in xs]) == \
            pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_singleton_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
