"""WorkerPool: submit/collect protocol, abandonment, bounded shutdown.

The hung-task scenarios use real threads wedged on events; every wait in
here is bounded, so a regression shows up as a failed assertion, not a
hung test run.
"""

import threading
import time

import pytest

from repro.obs import InMemorySink, Tracer
from repro.utils.parallel import PoolTimeout, WorkerPool


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            WorkerPool(1, backend="process")

    def test_rejects_negative_drain_timeout(self):
        with pytest.raises(ValueError):
            WorkerPool(1, drain_timeout_s=-1.0)


class TestSubmitCollect:
    def test_round_trip_with_tags(self):
        with WorkerPool(2) as pool:
            pool.submit(lambda: 10, tag="a")
            pool.submit(lambda: 20, tag="b")
            got = dict(pool.next_completed() for _ in range(2))
        assert got == {"a": 10, "b": 20}

    def test_full_pool_rejects_submission(self):
        release = threading.Event()
        with WorkerPool(1) as pool:
            pool.submit(lambda: release.wait(10.0), tag=0)
            assert pool.free_workers == 0
            with pytest.raises(RuntimeError, match="pool is full"):
                pool.submit(lambda: 1, tag=1)
            release.set()
            pool.next_completed()
        assert pool.abandoned_tasks == 0

    def test_ties_resolve_in_submission_order(self):
        gate = threading.Event()
        with WorkerPool(3) as pool:
            for i in (0, 1, 2):
                pool.submit(lambda v=i: gate.wait(10.0) or v, tag=i)
            gate.set()
            time.sleep(0.2)           # let all three finish before collecting
            tags = [pool.next_completed()[0] for _ in range(3)]
        assert tags == [0, 1, 2]

    def test_exception_propagates_and_frees_slot(self):
        with WorkerPool(1) as pool:
            pool.submit(lambda: 1 / 0, tag="boom")
            with pytest.raises(ZeroDivisionError):
                pool.next_completed()
            assert pool.pending == 0
            pool.submit(lambda: "ok", tag="next")
            assert pool.next_completed() == ("next", "ok")

    def test_collect_without_tasks_raises(self):
        with WorkerPool(1) as pool:
            with pytest.raises(RuntimeError, match="no tasks in flight"):
                pool.next_completed()

    def test_timeout_raises_pool_timeout_and_keeps_task(self):
        release = threading.Event()
        with WorkerPool(1) as pool:
            pool.submit(lambda: release.wait(10.0) and "late", tag=0)
            with pytest.raises(PoolTimeout, match="1 in flight"):
                pool.next_completed(timeout=0.05)
            assert pool.pending == 1  # the wait expired, the task did not
            release.set()
            assert pool.next_completed(timeout=5.0) == (0, "late")


class TestAbandon:
    def test_abandon_frees_slot_and_counts(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        release = threading.Event()
        with WorkerPool(1, tracer=tracer) as pool:
            pool.submit(lambda: release.wait(10.0), tag="hung")
            assert pool.abandon("hung")
            assert pool.free_workers == 1
            assert pool.abandoned_tasks == 1
            pool.submit(lambda: "fresh", tag="next")
            assert pool.next_completed() == ("next", "fresh")
            release.set()
        assert tracer.counters["pool.abandoned_tasks"] == 1

    def test_abandon_unknown_tag_is_false(self):
        with WorkerPool(1) as pool:
            assert not pool.abandon("never-submitted")
        assert pool.abandoned_tasks == 0

    def test_late_result_of_abandoned_task_is_dropped(self):
        release = threading.Event()
        with WorkerPool(2) as pool:
            pool.submit(lambda: release.wait(10.0) or "stale", tag="old")
            pool.abandon("old")
            release.set()             # the orphan thread now finishes
            time.sleep(0.2)
            pool.submit(lambda: "live", tag="new")
            # Only the live task's result surfaces; the stale one dropped.
            assert pool.next_completed(timeout=5.0) == ("new", "live")
            assert pool.pending == 0

    def test_abandon_completed_but_uncollected_task(self):
        with WorkerPool(2) as pool:
            pool.submit(lambda: "done", tag=0)
            time.sleep(0.2)           # finished, sitting in the queue
            pool.next_completed(timeout=5.0)  # absorb into ready
            pool.submit(lambda: "done2", tag=1)
            time.sleep(0.2)
            assert pool.abandon(1)
            pool.submit(lambda: "after", tag=2)
            assert pool.next_completed(timeout=5.0) == (2, "after")

    def test_replace_worker_counts_replacement(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        release = threading.Event()
        with WorkerPool(1, tracer=tracer) as pool:
            pool.submit(lambda: release.wait(10.0), tag="wedged")
            assert pool.replace_worker("wedged")
            assert not pool.replace_worker("wedged")  # already reclaimed
            release.set()
        assert tracer.counters["pool.workers_replaced"] == 1
        assert tracer.counters["pool.abandoned_tasks"] == 1


class TestBoundedClose:
    def test_close_does_not_block_on_hung_task(self):
        release = threading.Event()
        pool = WorkerPool(2, drain_timeout_s=0.2)
        pool.submit(lambda: release.wait(30.0), tag="hung")
        start = time.monotonic()
        pool.close()
        assert time.monotonic() - start < 5.0
        assert pool.abandoned_tasks == 1
        release.set()

    def test_close_joins_finishing_tasks_cleanly(self):
        pool = WorkerPool(2, drain_timeout_s=5.0)
        pool.submit(lambda: time.sleep(0.05), tag=0)
        pool.close()
        assert pool.abandoned_tasks == 0

    def test_close_is_idempotent(self):
        pool = WorkerPool(1)
        pool.close()
        pool.close()


class TestSerialBackend:
    def test_fifo_execution_deferred_to_collect(self):
        ran = []
        with WorkerPool(2, backend="serial") as pool:
            pool.submit(lambda: ran.append("a") or 1, tag="a")
            pool.submit(lambda: ran.append("b") or 2, tag="b")
            assert ran == []          # nothing executes at submit time
            assert pool.next_completed() == ("a", 1)
            assert pool.next_completed() == ("b", 2)
        assert ran == ["a", "b"]

    def test_serial_abandon_drops_queued_task(self):
        ran = []
        with WorkerPool(2, backend="serial") as pool:
            pool.submit(lambda: ran.append("a"), tag="a")
            pool.submit(lambda: ran.append("b") or "b", tag="b")
            assert pool.abandon("a")
            assert not pool.abandon("a")
            assert pool.next_completed() == ("b", "b")
        assert ran == ["b"]
        assert pool.abandoned_tasks == 1

    def test_serial_collect_empty_raises(self):
        with WorkerPool(1, backend="serial") as pool:
            with pytest.raises(RuntimeError, match="no tasks in flight"):
                pool.next_completed()
