"""Integration tests for the resilience layer (docs/ROBUSTNESS.md).

The headline guarantee under test: a tuning session killed mid-search and
resumed from its journal produces a result bit-identical to the same-seed
session run uninterrupted — for ROBOTune and all three baselines, with
and without fault injection.
"""

import numpy as np
import pytest

from repro.core.journal import EvaluationJournal
from repro.core.selection import ParameterSelector
from repro.core.tuner import ROBOTune
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.space import spark_space
from repro.tuners import WorkloadObjective
from repro.tuners.bestconfig import BestConfig
from repro.tuners.gunther import Gunther
from repro.tuners.random_search import RandomSearch
from repro.workloads import get_workload

SEED = 1234


@pytest.fixture(scope="module")
def space():
    return spark_space()


class Killed(Exception):
    """Stand-in for the process dying mid-search."""


class KillAfter:
    """Objective wrapper that dies after *n* executed evaluations."""

    def __init__(self, objective, n):
        self._objective = objective
        self._shared = {"calls": 0, "n": n}

    @property
    def space(self):
        return self._objective.space

    @property
    def time_limit_s(self):
        return self._objective.time_limit_s

    def with_space(self, space):
        clone = object.__new__(KillAfter)
        clone.__dict__ = dict(self.__dict__)
        clone._objective = self._objective.with_space(space)
        return clone

    def __getattr__(self, name):
        return getattr(self.__dict__["_objective"], name)

    def __call__(self, u, time_limit_s=None):
        if self._shared["calls"] >= self._shared["n"]:
            raise Killed
        self._shared["calls"] += 1
        return self._objective(u, time_limit_s)


def make_objective(space, *, faults=0.0):
    objective = WorkloadObjective(get_workload("pagerank", "D1"), space,
                                  rng=np.random.default_rng(SEED + 1))
    if faults:
        objective = FaultInjector(objective, FaultPlan(faults, seed=SEED + 2),
                                  retry=RetryPolicy(max_retries=2))
    return objective


def make_tuner(name):
    rng = np.random.default_rng(SEED)
    if name == "ROBOTune":
        # n_repeats=2 keeps the selection phase short; what matters here
        # is that its evaluations are journaled and replayed too.
        return ROBOTune(selector=ParameterSelector(n_repeats=2, rng=rng),
                        rng=rng), rng
    return {"RandomSearch": RandomSearch(), "BestConfig": BestConfig(),
            "Gunther": Gunther()}[name], rng


def assert_identical(a, b):
    assert len(a.evaluations) == len(b.evaluations)
    for x, y in zip(a.evaluations, b.evaluations):
        assert np.array_equal(x.vector, y.vector)
        assert x.objective == y.objective
        assert x.cost_s == y.cost_s
        assert x.status is y.status
        assert x.truncated == y.truncated
        assert x.transient == y.transient
        assert x.fault == y.fault
        assert all(y.config[k] == v for k, v in x.config.items())


def kill_resume_roundtrip(name, space, tmp_path, *, budget, kill_after,
                          faults=0.0):
    journal_path = tmp_path / "session.jsonl"

    # Reference: the same seed, never interrupted.
    tuner, rng = make_tuner(name)
    straight = tuner.tune(make_objective(space, faults=faults), budget,
                          rng=rng)

    # The session dies after *kill_after* executed evaluations...
    tuner, rng = make_tuner(name)
    with pytest.raises(Killed):
        tuner.checkpoint(KillAfter(make_objective(space, faults=faults),
                                   kill_after),
                         budget, journal_path, rng=rng)
    n_logged = len(EvaluationJournal(journal_path))
    assert n_logged == kill_after      # every finished evaluation survived

    # ... and a fresh process resumes it from the journal alone.
    tuner, rng = make_tuner(name)
    resumed = tuner.resume(make_objective(space, faults=faults), budget,
                           journal_path, rng=rng)
    assert_identical(straight, resumed)
    return straight, resumed


class TestKillAndResume:
    def test_robotune_resumes_bit_identical(self, space, tmp_path):
        # 30 objective calls is mid-parameter-selection for this budget:
        # resume must replay the selection phase's evaluations as well.
        straight, resumed = kill_resume_roundtrip(
            "ROBOTune", space, tmp_path, budget=15, kill_after=30)
        assert resumed.selected_parameters == straight.selected_parameters
        assert resumed.best_time_s == straight.best_time_s

    @pytest.mark.parametrize("name", ["RandomSearch", "BestConfig", "Gunther"])
    def test_baselines_resume_bit_identical(self, name, space, tmp_path):
        kill_resume_roundtrip(name, space, tmp_path, budget=40,
                              kill_after=30)

    def test_resume_under_fault_injection(self, space, tmp_path):
        # The fault plan's evaluation index must stay aligned across the
        # replay (via the injector's skip hook) for this to hold.
        straight, _ = kill_resume_roundtrip(
            "RandomSearch", space, tmp_path, budget=40, kill_after=30,
            faults=0.15)
        assert any(e.fault is not None for e in straight.evaluations)

    def test_resume_refuses_foreign_journal(self, space, tmp_path):
        journal_path = tmp_path / "session.jsonl"
        tuner, rng = make_tuner("RandomSearch")
        tuner.checkpoint(make_objective(space), 5, journal_path, rng=rng)
        other, rng = make_tuner("Gunther")
        with pytest.raises(ValueError, match="written by 'RandomSearch'"):
            other.resume(make_objective(space), 5, journal_path, rng=rng)

    def test_resume_refuses_other_workload(self, space, tmp_path):
        journal_path = tmp_path / "session.jsonl"
        tuner, rng = make_tuner("RandomSearch")
        tuner.checkpoint(make_objective(space), 5, journal_path, rng=rng)
        other = WorkloadObjective(get_workload("terasort", "D1"), space,
                                  rng=np.random.default_rng(SEED + 1))
        tuner, rng = make_tuner("RandomSearch")
        with pytest.raises(ValueError, match="belongs to workload"):
            tuner.resume(other, 5, journal_path, rng=rng)


class TestInFlightRecovery:
    """Dispatch records with no settling eval: work in flight at the kill.

    ``KillAfter`` raises *inside* the objective call, after the journal
    durably recorded the dispatch — exactly what a process death mid-
    evaluation leaves on disk.
    """

    def _kill_session(self, space, tmp_path, *, budget=40, kill_after=10):
        journal_path = tmp_path / "session.jsonl"
        tuner, rng = make_tuner("RandomSearch")
        with pytest.raises(Killed):
            tuner.checkpoint(KillAfter(make_objective(space), kill_after),
                             budget, journal_path, rng=rng)
        return journal_path

    def test_kill_leaves_exactly_one_pending_dispatch(self, space, tmp_path):
        journal_path = self._kill_session(space, tmp_path)
        journal = EvaluationJournal(journal_path)
        pending = journal.pending_dispatches()
        assert len(pending) == 1          # the evaluation that was executing
        assert journal.next_seq() == 11
        assert len(journal) == 10         # only settled records count

    def test_redispatch_resume_settles_the_pending_dispatch(self, space,
                                                            tmp_path):
        # Bit-identity of the default (redispatch) mode is pinned by
        # TestKillAndResume; here we pin the journal-level accounting.
        straight, resumed = kill_resume_roundtrip(
            "RandomSearch", space, tmp_path, budget=40, kill_after=10)
        journal = EvaluationJournal(tmp_path / "session.jsonl")
        assert journal.pending_dispatches() == []
        assert len(journal) == 40
        assert all(e.fault is None for e in resumed.evaluations)

    def test_censor_resume_writes_off_the_inflight_evaluation(self, space,
                                                              tmp_path):
        journal_path = self._kill_session(space, tmp_path)
        crashed = np.asarray(
            EvaluationJournal(journal_path).pending_dispatches()[0].vector)
        tuner, rng = make_tuner("RandomSearch")
        resumed = tuner.resume(make_objective(space), 40, journal_path,
                               rng=rng, recover="censor")
        assert resumed.n_evaluations == 40
        censored = [e for e in resumed.evaluations
                    if e.fault == "crash_recovery"]
        assert len(censored) == 1
        assert np.array_equal(censored[0].vector, crashed)
        assert censored[0].truncated and censored[0].transient
        journal = EvaluationJournal(journal_path)
        assert journal.pending_dispatches() == []
        assert len(journal) == 40


class TestSupervisedTuningUnderChaos:
    """Hang/worker-death chaos on the real workload objective."""

    def test_robotune_supervised_survives_hangs(self, space):
        from repro.core import ParameterSelectionCache
        from repro.faults import HangInjector, HangPlan
        from repro.supervise import SupervisePolicy
        objective = make_objective(space)
        # Pre-warm the selection cache so the unsupervised selection phase
        # is skipped and the chaos lands on the supervised BO loop.
        cache = ParameterSelectionCache()
        cache.put(objective.workload.key, list(space.names)[:6])
        # SEED + 6 draws no fault on indices 0-3 (the unsupervised initial
        # design) and a hang/death mix on the supervised BO phase.
        chaotic = HangInjector(objective,
                               HangPlan(0.3, seed=SEED + 6, hang_s=5.0,
                                        death_share=0.5))
        tuner = ROBOTune(selection_cache=cache, init_samples=4,
                         async_workers=2, rng=np.random.default_rng(SEED),
                         supervise=SupervisePolicy(eval_timeout_s=0.3,
                                                   quarantine_after=2))
        result = tuner.tune(chaotic, 12, rng=np.random.default_rng(SEED))
        assert result.n_evaluations == 12
        faults = [e.fault for e in result.evaluations if e.fault]
        assert faults                      # the chaos actually landed
        assert set(faults) <= {"deadline", "worker_death"}


class TestTuningUnderFaults:
    """Tier-1 coverage of the full fault path on the real objective."""

    def test_random_search_completes_under_faults(self, space):
        objective = make_objective(space, faults=0.2)
        result = RandomSearch().tune(objective, 25,
                                     rng=np.random.default_rng(SEED))
        assert result.n_evaluations == 25
        stats = objective.stats
        assert stats["injected"] > 0
        # Retry cost is charged: total cost covers at least the backoff.
        assert result.search_cost_s >= stats["backoff_s"]

    def test_robotune_completes_under_faults(self, space):
        objective = make_objective(space, faults=0.15)
        tuner, rng = make_tuner("ROBOTune")
        result = tuner.tune(objective, 12, rng=rng)
        assert result.n_evaluations == 12
        assert result.best_time_s > 0

    def test_fault_free_run_is_untouched_by_wrapping(self, space):
        plain = RandomSearch().tune(make_objective(space), 15,
                                    rng=np.random.default_rng(SEED))
        wrapped_obj = FaultInjector(make_objective(space), FaultPlan(0.0),
                                    retry=RetryPolicy())
        wrapped = RandomSearch().tune(wrapped_obj, 15,
                                      rng=np.random.default_rng(SEED))
        assert_identical(plain, wrapped)
