"""Acceptance: journal-backed warm starts beat cold starts on evals.

The ISSUE criterion for the transfer path: a warm-started session must
reach within 5% of the cold-start session's best objective in *strictly
fewer* evaluations, on at least one seeded workload.  Prior observations
shape the surrogate's posterior before iteration 0, so the BO loop skips
the early flailing a cold session spends mapping the landscape.
"""

from __future__ import annotations

import numpy as np

from repro.core import ParameterSelector, ROBOTune
from repro.tuners import SyntheticObjective, synthetic_space


def make_tuner(seed, **kw):
    defaults = dict(
        selector=ParameterSelector(n_samples=40, n_trees=40, n_repeats=3,
                                   rng=seed),
        rng=seed,
        engine_kwargs={"n_candidates": 64, "refine": False},
    )
    defaults.update(kw)
    return ROBOTune(**defaults)


def make_objective(seed, dim=10):
    return SyntheticObjective(synthetic_space(dim), n_effective=3, rng=seed,
                              name="warmbench", dataset="D1")


def evals_to_target(result, target: float) -> int:
    """1-based index of the first evaluation whose running best <= target."""
    curve = result.best_curve()
    hits = np.nonzero(curve <= target)[0]
    assert hits.size, "session never reached the target"
    return int(hits[0]) + 1


def test_warm_start_reaches_cold_best_in_fewer_evals(tmp_path):
    prior = tmp_path / "prior"
    prior.mkdir()

    # A prior session leaves its journal behind (budget spent *earlier*,
    # not charged to the sessions compared below).
    make_tuner(70).checkpoint(make_objective(71), budget=40,
                              journal=prior / "s0.jsonl", rng=72)

    # Cold and warm sessions are identical in every knob and seed; the
    # only difference is the folded-in prior experience.
    cold = make_tuner(73).tune(make_objective(71), budget=30, rng=74)
    warm_tuner = make_tuner(73, warm_start=str(prior))
    warm = warm_tuner.tune(make_objective(71), budget=30, rng=74)

    assert warm.warm_start_n > 0
    assert warm.n_evaluations == cold.n_evaluations  # priors cost no budget

    target = cold.best_time_s * 1.05
    assert warm.best_time_s <= target
    assert evals_to_target(warm, target) < evals_to_target(cold, target)
