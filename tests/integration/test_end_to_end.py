"""End-to-end integration tests: the full ROBOTune pipeline on the
simulated cluster, at reduced budget so the suite stays fast."""

import numpy as np
import pytest

from repro import (ConfigMemoizationBuffer, ParameterSelectionCache,
                   ParameterSelector, ROBOTune, RandomSearch, SparkConf,
                   SparkSimulator, WorkloadObjective, get_workload,
                   spark_space)

BUDGET = 40


@pytest.fixture(scope="module")
def space():
    return spark_space()


@pytest.fixture(scope="module")
def pr_session(space):
    """One cold ROBOTune session on PageRank-D1 (shared by assertions)."""
    cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
    tuner = ROBOTune(
        selector=ParameterSelector(n_samples=60, n_trees=60, n_repeats=3,
                                   rng=1),
        selection_cache=cache, memo_buffer=memo, rng=2)
    objective = WorkloadObjective(get_workload("pagerank", "D1"), space,
                                  rng=3)
    result = tuner.tune(objective, BUDGET, rng=4)
    return tuner, cache, memo, result


class TestColdSession:
    def test_finds_configuration_beating_oom_default(self, pr_session,
                                                     space):
        _, _, _, result = pr_session
        sim = SparkSimulator()
        stages = get_workload("pagerank", "D1").build_stages()
        assert not sim.run(stages, SparkConf(), rng=0).ok  # default OOMs
        tuned = sim.run(stages, result.best_config, rng=0)
        assert tuned.ok
        assert tuned.duration_s < 120.0

    def test_selects_executor_sizing(self, pr_session):
        _, _, _, result = pr_session
        selected = set(result.selected_parameters)
        assert "spark.executor.cores" in selected
        assert "spark.executor.memory" in selected

    def test_caches_populated(self, pr_session):
        _, cache, memo, _ = pr_session
        assert cache.get("pagerank")
        assert len(memo.best("pagerank", 10)) >= 1

    def test_search_cost_bounded_by_budget_times_cap(self, pr_session):
        _, _, _, result = pr_session
        assert result.search_cost_s <= BUDGET * 480.0

    def test_best_within_evaluated_configs(self, pr_session):
        _, _, _, result = pr_session
        ok_times = [e.objective for e in result.evaluations if e.ok]
        assert result.best_time_s == min(ok_times)


class TestWarmSession:
    def test_same_workload_new_dataset_faster_convergence(self, pr_session,
                                                          space):
        tuner, _, _, cold = pr_session
        objective = WorkloadObjective(get_workload("pagerank", "D3"), space,
                                      rng=5)
        warm = tuner.tune(objective, BUDGET, rng=6)
        assert warm.selection_cache_hit
        assert warm.memoized_used > 0
        assert warm.selection_cost_s == 0.0
        # The warm session's very first evaluations should already be good:
        # within 2x of the session best (cold sessions start anywhere).
        early = min(e.objective for e in warm.evaluations[:4] if e.ok)
        assert early <= warm.best_time_s * 2.0


class TestAgainstBaseline:
    def test_robotune_search_cost_beats_random_search(self, pr_session,
                                                      space):
        _, _, _, robo = pr_session
        objective = WorkloadObjective(get_workload("pagerank", "D1"), space,
                                      rng=7)
        rs = RandomSearch().tune(objective, BUDGET, rng=8)
        assert robo.search_cost_s < rs.search_cost_s
        # And best-found configs are at least competitive.
        assert robo.best_time_s <= rs.best_time_s * 1.25


class TestOtherWorkloads:
    @pytest.mark.parametrize("name", ["kmeans", "terasort"])
    def test_pipeline_runs_on(self, name, space):
        tuner = ROBOTune(
            selector=ParameterSelector(n_samples=40, n_trees=40,
                                       n_repeats=2, rng=10),
            rng=11, engine_kwargs={"n_candidates": 128, "refine": False})
        objective = WorkloadObjective(get_workload(name, "D1"), space,
                                      rng=12)
        result = tuner.tune(objective, 30, rng=13)
        assert result.n_evaluations == 30
        assert result.best_time_s < 480.0
