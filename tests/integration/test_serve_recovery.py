"""Crash recovery under the daemon: SIGKILL, restart, bit-identity.

The brutal version of the service contract: a daemon is SIGKILLed at a
journal-defined progress point mid-session, a fresh daemon adopts the
orphaned RUNNING session through the stale-lock path, resumes it through
journal-v2 recovery — and the final result digest equals the golden
in-process run of the same spec.  The journal is then audited for
double-charging: every dispatch settles exactly once and the evaluation
count is exactly ``selection_samples + budget``.
"""

from __future__ import annotations

import json
import time

from repro.serve import SessionSpec, result_payload, run_session

from tests.serve.harness import DaemonHarness, export_artifacts, \
    fast_spec_kwargs

SPEC = SessionSpec(workload="pagerank", dataset="D1", seed=42,
                   **fast_spec_kwargs(budget=8))


def _journal_records(path):
    records = []
    for line in path.read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def test_sigkill_restart_resumes_bit_identically(tmp_path):
    store_root = tmp_path / "store"

    # Phase 1: daemon picks the session up, then dies mid-session once
    # the journal shows real progress (a progress point, not a timer, so
    # the kill lands identically on fast and slow machines).
    first = DaemonHarness(store_root, workers=1).start()
    sid = first.client().submit(SPEC)
    killed_at = first.kill_when_journal_reaches(sid, 6)
    assert killed_at >= 6

    # The orphan is exactly as the crash left it: RUNNING, lock on disk
    # but its owner dead, result absent.
    store = first.store
    assert store.state(sid) == "RUNNING"
    assert store.lock_holder(sid) is None  # recorded pid is dead
    assert store.result(sid) is None

    # Phase 2: a fresh daemon adopts and finishes it.
    with DaemonHarness(store_root, workers=1, drain=True) as second:
        assert second.wait(timeout_s=570) == 0
        export_artifacts(second.store)

    view = store.view(sid)
    assert view["state"] == "DONE", view.get("error")

    # Golden digest: identical to an uninterrupted in-process run.
    golden = result_payload(SPEC, run_session(SPEC))
    assert view["result"]["digest"] == golden["digest"]
    assert view["result"]["n_stream"] == golden["n_stream"]
    assert view["result"]["best_objective"] == golden["best_objective"]

    # No double-charged evaluation: every journal dispatch settled
    # exactly once, and the tuning-phase evaluation count is exactly the
    # session budget (selection-phase evaluations are not journaled as
    # dispatches).
    records = _journal_records(store.journal_path(sid))
    dispatches = [r["seq"] for r in records if r["kind"] == "dispatch"]
    settles = [r["seq"] for r in records if r["kind"] == "eval"
               and r.get("seq") is not None]
    assert sorted(set(dispatches)) == sorted(dispatches)
    assert sorted(settles) == sorted(set(settles))
    assert set(settles) == set(dispatches)

    # Two trace files: the killed attempt and the resumed attempt.
    assert [p.name for p in store.trace_paths(sid)] == [
        "trace-0.jsonl", "trace-1.jsonl"]


def test_second_daemon_does_not_steal_a_live_session(tmp_path):
    # Two daemons over one store: the session claimed by the live first
    # daemon must not be double-claimed by the second.  The session gets
    # a budget big enough to still be running through the whole
    # observation window.
    long_spec = SessionSpec(workload="pagerank", dataset="D1", seed=42,
                            **fast_spec_kwargs(budget=60))
    store_root = tmp_path / "store"
    with DaemonHarness(store_root, workers=1) as first:
        sid = first.client().submit(long_spec)
        # Wait until the first daemon holds the claim.
        for _ in range(2400):
            if first.store.lock_holder(sid) is not None:
                break
            time.sleep(0.05)
        holder = first.store.lock_holder(sid)
        assert holder is not None and holder["pid"] == first.proc.pid
        with DaemonHarness(store_root, workers=1) as second:
            info = second.store.daemon_info()
            assert info["pid"] == second.proc.pid
            # Give the rival time to (incorrectly) try a takeover.
            time.sleep(1.0)
            still = first.store.lock_holder(sid)
            assert still is not None and still["pid"] == first.proc.pid
        view = first.client().wait(sid, timeout_s=570)
    assert view["state"] == "DONE"
    assert view["result"]["digest"] == result_payload(
        long_spec, run_session(long_spec))["digest"]
