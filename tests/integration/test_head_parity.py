"""End-to-end decision-sequence parity with the pre-observability tuners.

The golden digests below were produced by this exact script at the commit
*before* the observability layer landed (tracing did not exist yet).  If
any of them changes, instrumentation has leaked into a decision path —
an RNG draw, a clock read, a reordered operation — which breaks the
contract that tracing only ever observes.

Reproduction (at any commit):

    tuner, seed = <row below>
    objective = SyntheticObjective(synthetic_space(6), n_effective=2,
                                   name="golden", rng=seed + 1)
    result = tuner.tune(objective, 30, rng=seed)
    digest(result)  # sha256 over (vector bytes, objective bytes), 16 hex
"""

import hashlib

import numpy as np
import pytest

from repro.core.selection import ParameterSelector
from repro.core.tuner import ROBOTune
from repro.obs import InMemorySink, Tracer
from repro.tuners.bestconfig import BestConfig
from repro.tuners.gunther import Gunther
from repro.tuners.random_search import RandomSearch
from repro.tuners.synthetic import SyntheticObjective, synthetic_space

GOLDEN = {
    "ROBOTune": "923ae24e93865dcb",
    "BestConfig": "0ccfb94ddcd088ba",
    "Gunther": "75b71643a8e147bf",
    "RandomSearch": "49eb07eee9cc8517",
}


def make_tuner(name: str):
    if name == "ROBOTune":
        return ROBOTune(selector=ParameterSelector(n_samples=12, n_trees=25,
                                                   n_repeats=3, rng=7),
                        init_samples=6, rng=0), 0
    if name == "BestConfig":
        return BestConfig(round_size=10), 1
    if name == "Gunther":
        return Gunther(population=8), 2
    return RandomSearch(), 3


def digest(result) -> str:
    h = hashlib.sha256()
    for e in result.evaluations:
        h.update(np.ascontiguousarray(
            np.asarray(e.vector, dtype=float)).tobytes())
        h.update(np.float64(e.objective).tobytes())
    return h.hexdigest()[:16]


def run(name: str, tracer=None):
    tuner, seed = make_tuner(name)
    objective = SyntheticObjective(synthetic_space(6), n_effective=2,
                                   name="golden", rng=seed + 1)
    return tuner.tune(objective, 30, rng=seed, tracer=tracer)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_untraced_decisions_match_pre_observability_head(name):
    assert digest(run(name)) == GOLDEN[name]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_traced_decisions_match_pre_observability_head(name):
    tracer = Tracer(InMemorySink(), meta={"tuner": name})
    result = run(name, tracer=tracer)
    tracer.close()
    assert digest(result) == GOLDEN[name]


def run_async(tracer=None):
    """The ROBOTune golden row with the async engine at one worker.

    ``async_workers=1`` is the degenerate asynchronous case: never more
    than one point in flight, so no busy-point penalization fires and the
    proposal sequence must be bit-identical to the serial loop.
    """
    tuner = ROBOTune(selector=ParameterSelector(n_samples=12, n_trees=25,
                                                n_repeats=3, rng=7),
                     init_samples=6, async_workers=1, rng=0)
    objective = SyntheticObjective(synthetic_space(6), n_effective=2,
                                   name="golden", rng=1)
    return tuner.tune(objective, 30, rng=0, tracer=tracer)


def test_async_single_worker_matches_golden_head():
    assert digest(run_async()) == GOLDEN["ROBOTune"]


def test_traced_async_single_worker_matches_golden_head():
    tracer = Tracer(InMemorySink(), meta={"tuner": "ROBOTune-async"})
    result = run_async(tracer=tracer)
    tracer.close()
    assert digest(result) == GOLDEN["ROBOTune"]
