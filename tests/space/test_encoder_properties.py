"""Property tests for the configuration encoder over *random* spaces.

The existing property suite (test_space_properties.py) exercises the
fixed 44-parameter Spark space; here hypothesis also draws the space
itself — parameter types, bounds, log scaling, categorical choice sets —
so the encode/decode contract is tested where it is easiest to break:
adversarial bounds, tiny ranges, and deep categorical sets.

Contract under test:

* encode always lands in the closed unit cube;
* decode∘encode is the identity on native configurations (exact for
  discrete parameters, up to float round-off for continuous ones);
* out-of-bounds vector coordinates clip to the nearest bound;
* categorical/int cell mapping is stable: any coordinate within a
  value's cell decodes to that value;
* the conf-file rendering round-trips through the parser.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.space.encoder import ConfigurationEncoder
from repro.space.parameter import (BoolParameter, CategoricalParameter,
                                   FloatParameter, IntParameter,
                                   SizeParameter, TimeParameter)
from repro.space.space import ConfigSpace


# -- random-space strategies ---------------------------------------------------------
def _float_param(i: int):
    def build(args):
        low, width, log = args
        if log:
            low = abs(low) + 1e-3
            high = low * (1.5 + width)
        else:
            high = low + 1e-3 + width
        return FloatParameter(f"p{i}.float", low, high, low, log=log)
    return st.tuples(st.floats(-1e6, 1e6, allow_nan=False),
                     st.floats(0.0, 1e6, allow_nan=False),
                     st.booleans()).map(build)


def _int_param(i: int):
    def build(args):
        low, span, log = args
        if log:
            low = abs(low) + 1
        return IntParameter(f"p{i}.int", low, low + span, low, log=log)
    return st.tuples(st.integers(-1000, 1000), st.integers(1, 2000),
                     st.booleans()).map(build)


def _bool_param(i: int):
    return st.booleans().map(
        lambda d: BoolParameter(f"p{i}.bool", d))


def _cat_param(i: int):
    return st.integers(2, 12).map(
        lambda k: CategoricalParameter(f"p{i}.cat",
                                       [f"c{j}" for j in range(k)], "c0"))


def _size_param(i: int):
    return st.tuples(st.integers(1, 512), st.integers(1, 4096),
                     st.sampled_from(["k", "m", "g"])).map(
        lambda a: SizeParameter(f"p{i}.size", a[0], a[0] + a[1], a[0],
                                unit=a[2]))


def _time_param(i: int):
    return st.tuples(st.integers(0, 600), st.integers(1, 600),
                     st.sampled_from(["s", "ms"])).map(
        lambda a: TimeParameter(f"p{i}.time", a[0], a[0] + a[1], a[0],
                                unit=a[2]))


_MAKERS = (_float_param, _int_param, _bool_param, _cat_param, _size_param,
           _time_param)


@st.composite
def spaces(draw, max_dim: int = 8):
    dim = draw(st.integers(1, max_dim))
    params = [draw(draw(st.sampled_from(_MAKERS))(i)) for i in range(dim)]
    return ConfigSpace(params)


@st.composite
def spaces_with_vectors(draw, low: float = 0.0, high: float = 1.0):
    space = draw(spaces())
    u = draw(st.lists(st.floats(low, high, allow_nan=False),
                      min_size=space.dim, max_size=space.dim).map(np.array))
    return space, u


def _is_discrete(p) -> bool:
    return not isinstance(p, FloatParameter)


def _assert_native_equal(p, a, b):
    if _is_discrete(p):
        assert a == b, f"{p.name}: {a!r} != {b!r}"
    else:
        tol = 1e-8 * (1.0 + abs(p.low) + abs(p.high))
        assert abs(a - b) <= tol, f"{p.name}: {a!r} != {b!r}"


class TestEncodeDecodeRoundTrip:
    @given(spaces_with_vectors())
    @settings(max_examples=150, deadline=None)
    def test_decode_encode_decode_identity(self, sv):
        space, u = sv
        enc = ConfigurationEncoder(space)
        conf = enc.to_native(u)
        conf2 = enc.to_native(space.encode(conf))
        for p in space:
            _assert_native_equal(p, conf[p.name], conf2[p.name])

    @given(spaces_with_vectors())
    @settings(max_examples=100, deadline=None)
    def test_encode_lands_in_the_unit_cube(self, sv):
        space, u = sv
        v = space.encode(space.decode(u))
        assert np.all(v >= 0.0) and np.all(v <= 1.0)

    @given(spaces_with_vectors(low=-3.0, high=4.0))
    @settings(max_examples=100, deadline=None)
    def test_out_of_bounds_coordinates_clip(self, sv):
        """decode(u) == decode(clip(u, 0, 1)) — no wrap-around, no error."""
        space, u = sv
        enc = ConfigurationEncoder(space)
        assert enc.to_native(u) == enc.to_native(np.clip(u, 0.0, 1.0))


class TestDiscreteExactness:
    @given(spaces())
    @settings(max_examples=100, deadline=None)
    def test_every_discrete_value_is_a_fixed_point(self, space):
        """from_unit(to_unit(v)) == v for every reachable discrete value."""
        for p in space:
            if not _is_discrete(p):
                continue
            values = (p.choices if isinstance(p, CategoricalParameter)
                      else [False, True] if isinstance(p, BoolParameter)
                      else p.grid(23))
            for v in values:
                assert p.from_unit(p.to_unit(v)) == v

    @given(st.integers(2, 24), st.floats(0.0, 0.999))
    @settings(max_examples=150, deadline=None)
    def test_categorical_cells_are_stable(self, k, frac):
        """Every coordinate inside a choice's cell decodes to that choice,
        and the cell-centre encoding is that cell's midpoint."""
        p = CategoricalParameter("c", [f"c{j}" for j in range(k)], "c0")
        u = frac  # lands in cell floor(frac * k)
        choice = p.from_unit(u)
        assert choice == f"c{int(frac * k)}"
        assert p.from_unit(p.to_unit(choice)) == choice
        # Nudging within the same cell never changes the decode.
        centre = p.to_unit(choice)
        eps = 0.49 / k
        assert p.from_unit(centre - eps) == choice
        assert p.from_unit(centre + eps) == choice


class TestConfFileRoundTrip:
    @given(spaces_with_vectors())
    @settings(max_examples=100, deadline=None)
    def test_conf_file_parses_back_to_the_same_strings(self, sv):
        space, u = sv
        enc = ConfigurationEncoder(space)
        conf = enc.to_native(u)
        assert enc.parse_conf_file(enc.to_conf_file(conf)) \
            == enc.to_strings(conf)

    @given(spaces_with_vectors())
    @settings(max_examples=50, deadline=None)
    def test_encode_vector_is_the_composition(self, sv):
        space, u = sv
        enc = ConfigurationEncoder(space)
        assert enc.encode_vector(u) == enc.to_conf_file(enc.to_native(u))
