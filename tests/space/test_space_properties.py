"""Property tests over the full 44-parameter Spark space."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.space import spark_space

SPACE = spark_space()
unit_vectors = st.lists(st.floats(0.0, 1.0), min_size=SPACE.dim,
                        max_size=SPACE.dim).map(np.array)


class TestRoundTrips:
    @given(unit_vectors)
    @settings(max_examples=80, deadline=None)
    def test_decode_encode_decode_stable(self, u):
        """Native configurations are fixed points of encode∘decode."""
        conf = SPACE.decode(u)
        conf2 = SPACE.decode(SPACE.encode(conf))
        assert conf == conf2

    @given(unit_vectors)
    @settings(max_examples=80, deadline=None)
    def test_snap_idempotent(self, u):
        s1 = SPACE.snap(u)
        np.testing.assert_allclose(SPACE.snap(s1), s1)

    @given(unit_vectors)
    @settings(max_examples=80, deadline=None)
    def test_every_decode_is_valid(self, u):
        assert SPACE.validate(SPACE.decode(u)) == []

    @given(unit_vectors)
    @settings(max_examples=40, deadline=None)
    def test_snap_preserves_decoded_config(self, u):
        """Snapping must not change which native config a vector means."""
        assert SPACE.decode(u) == SPACE.decode(SPACE.snap(u))


class TestSubspaceProperties:
    @given(unit_vectors, st.sets(st.integers(0, SPACE.dim - 1), min_size=1,
                                 max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_subspace_decode_consistent_with_base(self, u, idxs):
        """A subspace decode equals the base config except on the
        selected coordinates."""
        base = SPACE.decode(u)
        names = [SPACE.names[i] for i in sorted(idxs)]
        sub = SPACE.subspace(names, base=base)
        v = np.random.default_rng(0).random(sub.dim)
        conf = sub.decode(v)
        for name in SPACE.names:
            if name not in names:
                assert conf[name] == base[name]
