"""Tests for the configuration encoder (§4)."""

import numpy as np
import pytest

from repro.space import ConfigurationEncoder, spark_space


@pytest.fixture()
def encoder():
    return ConfigurationEncoder(spark_space())


class TestStringRendering:
    def test_booleans_lowercase(self, encoder):
        conf = spark_space().default_configuration()
        strings = encoder.to_strings(conf)
        assert strings["spark.shuffle.compress"] == "true"
        assert strings["spark.rdd.compress"] == "false"

    def test_sizes_get_suffix(self, encoder):
        conf = spark_space().default_configuration()
        strings = encoder.to_strings(conf)
        assert strings["spark.executor.memory"] == "1024m"
        assert strings["spark.shuffle.file.buffer"] == "32k"

    def test_times_get_suffix(self, encoder):
        strings = encoder.to_strings(spark_space().default_configuration())
        assert strings["spark.locality.wait"] == "3s"
        assert strings["spark.network.timeout"] == "120s"

    def test_unknown_keys_fall_back_to_str(self, encoder):
        strings = encoder.to_strings({"spark.app.name": "bench"})
        assert strings["spark.app.name"] == "bench"


class TestConfFileRoundTrip:
    def test_vector_to_file_contains_all_params(self, encoder):
        text = encoder.encode_vector(np.full(44, 0.5))
        lines = [ln for ln in text.splitlines() if ln]
        assert len(lines) == 44

    def test_parse_round_trip(self, encoder):
        conf = spark_space().default_configuration()
        text = encoder.to_conf_file(conf)
        parsed = encoder.parse_conf_file(text)
        assert parsed == encoder.to_strings(conf)

    def test_parse_skips_comments_and_blanks(self, encoder):
        parsed = encoder.parse_conf_file(
            "# a comment\n\nspark.executor.cores 4\n")
        assert parsed == {"spark.executor.cores": "4"}

    def test_parse_rejects_malformed(self, encoder):
        with pytest.raises(ValueError):
            encoder.parse_conf_file("just-one-token\n")

    def test_decoded_vector_round_trips_through_file(self, encoder):
        sp = spark_space()
        rng = np.random.default_rng(0)
        u = sp.snap(rng.random(sp.dim))
        conf = encoder.to_native(u)
        parsed = encoder.parse_conf_file(encoder.to_conf_file(conf))
        assert parsed == encoder.to_strings(conf)
