"""Unit and property tests for ConfigSpace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.space import (
    BoolParameter,
    CategoricalParameter,
    ConfigSpace,
    FloatParameter,
    IntParameter,
)


def small_space() -> ConfigSpace:
    return ConfigSpace([
        IntParameter("cores", 1, 8, 2, group="size"),
        FloatParameter("fraction", 0.1, 0.9, 0.5),
        BoolParameter("flag", False, group="flaggy"),
        CategoricalParameter("codec", ["a", "b", "c"], "a"),
        IntParameter("buf", 1, 64, 8, group="flaggy"),
    ])


class TestBasics:
    def test_dim_and_names(self):
        sp = small_space()
        assert sp.dim == len(sp) == 5
        assert sp.names[0] == "cores"
        assert "fraction" in sp
        assert sp["codec"].choices == ["a", "b", "c"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntParameter("x", 0, 5, 1),
                         IntParameter("x", 0, 5, 1)])

    def test_index_of(self):
        sp = small_space()
        assert sp.index_of("flag") == 2

    def test_groups_partition_all_columns(self):
        sp = small_space()
        groups = sp.groups()
        cols = sorted(c for idxs in groups.values() for c in idxs)
        assert cols == list(range(sp.dim))
        assert groups["flaggy"] == [2, 4]
        assert groups["size"] == [0]


class TestEncodeDecode:
    def test_decode_includes_all_params(self):
        sp = small_space()
        conf = sp.decode(np.full(5, 0.5))
        assert set(conf) == set(sp.names)

    def test_decode_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            small_space().decode(np.zeros(3))

    def test_encode_uses_defaults_for_missing(self):
        sp = small_space()
        u = sp.encode({})
        conf = sp.decode(u)
        assert conf == sp.default_configuration()

    @given(st.lists(st.floats(0.0, 1.0), min_size=5, max_size=5))
    @settings(max_examples=50)
    def test_snap_idempotent(self, vals):
        """snap(snap(u)) == snap(u): decoding is stable after one snap."""
        sp = small_space()
        u = np.array(vals)
        s1 = sp.snap(u)
        s2 = sp.snap(s1)
        np.testing.assert_allclose(s1, s2)

    @given(st.lists(st.floats(0.0, 1.0), min_size=5, max_size=5))
    @settings(max_examples=50)
    def test_decode_encode_decode_roundtrip(self, vals):
        """Decoded config survives an encode/decode round trip exactly."""
        sp = small_space()
        conf = sp.decode(np.array(vals))
        conf2 = sp.decode(sp.encode(conf))
        assert conf == conf2

    def test_batch_shapes(self):
        sp = small_space()
        U = np.random.default_rng(0).random((7, 5))
        confs = sp.decode_batch(U)
        assert len(confs) == 7
        back = sp.encode_batch(confs)
        assert back.shape == (7, 5)

    def test_encode_batch_empty(self):
        sp = small_space()
        assert sp.encode_batch([]).shape == (0, 5)


class TestValidation:
    def test_validate_flags_bad_values(self):
        sp = small_space()
        bad = sp.validate({"cores": 99, "fraction": 0.5})
        assert bad == ["cores"]

    def test_validate_ok(self):
        sp = small_space()
        assert sp.validate(sp.default_configuration()) == []


class TestSubspace:
    def test_subspace_freezes_others_at_defaults(self):
        sp = small_space()
        sub = sp.subspace(["fraction", "codec"])
        assert sub.dim == 2
        conf = sub.decode(np.array([0.5, 0.9]))
        assert conf["cores"] == 2          # default
        assert conf["flag"] is False       # default
        assert conf["codec"] == "c"

    def test_subspace_base_overrides(self):
        sp = small_space()
        sub = sp.subspace(["fraction"], base={"cores": 7})
        conf = sub.decode(np.array([0.0]))
        assert conf["cores"] == 7

    def test_subspace_unknown_name(self):
        with pytest.raises(KeyError):
            small_space().subspace(["nope"])

    def test_subspace_duplicate_names(self):
        with pytest.raises(ValueError):
            small_space().subspace(["cores", "cores"])

    def test_nested_subspace_keeps_frozen(self):
        sp = small_space()
        sub = sp.subspace(["fraction", "codec"], base={"cores": 5})
        sub2 = sub.subspace(["fraction"])
        conf = sub2.decode(np.array([1.0]))
        assert conf["cores"] == 5
        assert conf["codec"] == "a"  # sub's default for codec

    def test_frozen_overlap_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntParameter("x", 0, 5, 1)], frozen={"x": 3})
