"""Unit tests for typed parameters."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.space.parameter import (
    BoolParameter,
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    SizeParameter,
    TimeParameter,
)


class TestFloatParameter:
    def test_endpoints(self):
        p = FloatParameter("f", 2.0, 10.0, 5.0)
        assert p.from_unit(0.0) == 2.0
        assert p.from_unit(1.0) == 10.0

    def test_roundtrip_midpoint(self):
        p = FloatParameter("f", 0.3, 0.9, 0.6)
        assert p.to_unit(p.from_unit(0.5)) == pytest.approx(0.5)

    def test_log_scale_geometric_midpoint(self):
        p = FloatParameter("f", 1.0, 100.0, 10.0, log=True)
        assert p.from_unit(0.5) == pytest.approx(10.0)

    def test_clipping_out_of_range_unit(self):
        p = FloatParameter("f", 0.0, 1.0, 0.5)
        assert p.from_unit(-0.3) == 0.0
        assert p.from_unit(1.7) == 1.0

    def test_validate(self):
        p = FloatParameter("f", 0.0, 1.0, 0.5)
        assert p.validate(0.7)
        assert not p.validate(1.5)
        assert not p.validate("not-a-number")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FloatParameter("f", 5.0, 1.0, 2.0)

    def test_rejects_log_with_nonpositive_low(self):
        with pytest.raises(ValueError):
            FloatParameter("f", 0.0, 1.0, 0.5, log=True)

    def test_rejects_default_outside_range(self):
        with pytest.raises(ValueError):
            FloatParameter("f", 0.0, 1.0, 3.0)

    @given(st.floats(0.0, 1.0))
    def test_from_unit_always_in_range(self, u):
        p = FloatParameter("f", -3.0, 7.0, 0.0)
        assert -3.0 <= p.from_unit(u) <= 7.0

    def test_format(self):
        p = FloatParameter("f", 0.0, 1.0, 0.5)
        assert p.format(0.25) == "0.25"


class TestIntParameter:
    def test_covers_all_values(self):
        p = IntParameter("i", 1, 4, 2)
        seen = {p.from_unit(u) for u in np.linspace(0, 1, 101)}
        assert seen == {1, 2, 3, 4}

    def test_roundtrip_every_value(self):
        p = IntParameter("i", 3, 17, 5)
        for v in range(3, 18):
            assert p.from_unit(p.to_unit(v)) == v

    def test_log_roundtrip_every_value(self):
        p = IntParameter("i", 1, 1024, 8, log=True)
        for v in (1, 2, 7, 100, 512, 1024):
            assert p.from_unit(p.to_unit(v)) == v

    def test_log_spreads_small_values(self):
        p = IntParameter("i", 1, 1024, 8, log=True)
        # Half the unit range should map below ~sqrt(1024) = 32.
        assert p.from_unit(0.5) <= 40

    def test_cardinality(self):
        assert IntParameter("i", 0, 9, 3).cardinality == 10

    def test_validate_rejects_float(self):
        p = IntParameter("i", 0, 9, 3)
        assert not p.validate(3.5)
        assert p.validate(3)

    @given(st.floats(0.0, 1.0))
    def test_from_unit_in_range(self, u):
        p = IntParameter("i", 2, 37, 10)
        assert 2 <= p.from_unit(u) <= 37


class TestBoolParameter:
    def test_threshold(self):
        p = BoolParameter("b", False)
        assert p.from_unit(0.49) is False
        assert p.from_unit(0.51) is True

    def test_roundtrip(self):
        p = BoolParameter("b", True)
        assert p.from_unit(p.to_unit(True)) is True
        assert p.from_unit(p.to_unit(False)) is False

    def test_format_spark_style(self):
        p = BoolParameter("b", True)
        assert p.format(True) == "true"
        assert p.format(False) == "false"

    def test_validate(self):
        p = BoolParameter("b", True)
        assert p.validate(np.bool_(False))
        assert not p.validate(1)


class TestCategoricalParameter:
    def test_equal_cells(self):
        p = CategoricalParameter("c", ["a", "b", "c", "d"], "a")
        assert p.from_unit(0.1) == "a"
        assert p.from_unit(0.3) == "b"
        assert p.from_unit(0.6) == "c"
        assert p.from_unit(0.99) == "d"

    def test_roundtrip(self):
        p = CategoricalParameter("c", ["x", "y", "z"], "y")
        for v in ("x", "y", "z"):
            assert p.from_unit(p.to_unit(v)) == v

    def test_rejects_single_choice(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["only"], "only")

    def test_rejects_duplicate_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["a", "a"], "a")

    def test_rejects_foreign_default(self):
        with pytest.raises(ValueError):
            CategoricalParameter("c", ["a", "b"], "z")


class TestSizeParameter:
    def test_format_suffix(self):
        p = SizeParameter("s", 16, 512, 32, unit="k")
        assert p.format(64) == "64k"

    def test_to_bytes(self):
        p = SizeParameter("s", 1, 100, 10, unit="m")
        assert p.to_bytes(3) == 3 * 1024 * 1024

    def test_log_scaled_by_default(self):
        p = SizeParameter("s", 1024, 184320, 2048)
        assert p.log is True

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            SizeParameter("s", 1, 10, 5, unit="q")


class TestTimeParameter:
    def test_to_seconds(self):
        assert TimeParameter("t", 0, 10, 3, unit="s").to_seconds(4) == 4.0
        assert TimeParameter("t", 0, 1000, 30, unit="ms").to_seconds(500) == 0.5

    def test_format(self):
        assert TimeParameter("t", 0, 10, 3, unit="s").format(7) == "7s"

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            TimeParameter("t", 0, 10, 5, unit="h")


class TestGrid:
    def test_grid_dedupes(self):
        p = IntParameter("i", 1, 3, 2)
        g = p.grid(30)
        assert g == [1, 2, 3]
