"""Tests for the 44-parameter Spark tuning space."""

import numpy as np
import pytest

from repro.space import SPARK_PARAM_COUNT, spark_parameters, spark_space
from repro.space.parameter import SizeParameter


class TestSpaceShape:
    def test_exactly_44_parameters(self):
        assert len(spark_parameters()) == SPARK_PARAM_COUNT == 44
        assert spark_space().dim == 44

    def test_all_names_spark_prefixed(self):
        assert all(p.name.startswith("spark.") for p in spark_parameters())

    def test_no_duplicate_names(self):
        names = [p.name for p in spark_parameters()]
        assert len(set(names)) == len(names)

    def test_paper_cores_memory_ranges(self):
        """§5.1: cores 1-32, memory 8-180 GB reachable on the testbed."""
        sp = spark_space()
        cores = sp["spark.executor.cores"]
        mem = sp["spark.executor.memory"]
        assert (cores.low, cores.high) == (1, 32)
        assert isinstance(mem, SizeParameter)
        assert mem.high >= 180 * 1024

    def test_spark_defaults(self):
        conf = spark_space().default_configuration()
        assert conf["spark.executor.memory"] == 1024  # the paper's OOM villain
        assert conf["spark.memory.fraction"] == 0.6
        assert conf["spark.serializer"] == "java"
        assert conf["spark.shuffle.compress"] is True
        assert conf["spark.io.compression.codec"] == "lz4"


class TestCollinearityGroups:
    def test_executor_size_joint_parameter(self):
        """§4: executor size groups cores and memory by domain knowledge."""
        groups = spark_space().groups()
        names = spark_space().names
        members = {names[i] for i in groups["executor.size"]}
        assert members == {"spark.executor.cores", "spark.executor.memory"}

    def test_dependent_parameter_groups(self):
        groups = spark_space().groups()
        names = spark_space().names
        assert {names[i] for i in groups["offheap"]} == {
            "spark.memory.offHeap.enabled", "spark.memory.offHeap.size"}
        assert len(groups["speculation"]) == 3
        assert len(groups["serializer"]) == 3

    def test_group_count_below_dim(self):
        groups = spark_space().groups()
        assert len(groups) < 44
        assert sum(len(v) for v in groups.values()) == 44


class TestDecodedConfigs:
    def test_random_vectors_decode_to_valid_configs(self):
        sp = spark_space()
        rng = np.random.default_rng(5)
        for _ in range(50):
            conf = sp.decode(rng.random(sp.dim))
            assert sp.validate(conf) == []

    def test_extreme_corners_valid(self):
        sp = spark_space()
        for u in (np.zeros(sp.dim), np.ones(sp.dim), np.full(sp.dim, 0.5)):
            assert sp.validate(sp.decode(u)) == []
