"""Tests for uniform random sampling."""

import numpy as np
import pytest

from repro.sampling import uniform_samples


def test_shape_and_range():
    U = uniform_samples(50, 7, rng=1)
    assert U.shape == (50, 7)
    assert U.min() >= 0.0 and U.max() < 1.0


def test_deterministic_given_seed():
    np.testing.assert_array_equal(uniform_samples(5, 2, rng=9),
                                  uniform_samples(5, 2, rng=9))


def test_rejects_bad_args():
    with pytest.raises(ValueError):
        uniform_samples(0, 3)
    with pytest.raises(ValueError):
        uniform_samples(3, -1)


def test_roughly_uniform_marginals():
    U = uniform_samples(4000, 2, rng=3)
    hist, _ = np.histogram(U[:, 0], bins=10, range=(0, 1))
    assert hist.min() > 300  # each decile near 400
