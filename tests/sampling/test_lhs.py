"""Tests for Latin Hypercube Sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sampling import (latin_hypercube, maximin_latin_hypercube,
                            min_pairwise_distance)


class TestLatinProperty:
    @given(st.integers(2, 40), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_one_sample_per_stratum_every_axis(self, n, dim):
        """The defining LHS property (McKay et al.): each of the n
        equal-probability intervals of every axis holds exactly one point."""
        U = latin_hypercube(n, dim, rng=7)
        strata = np.floor(U * n).astype(int)
        for j in range(dim):
            assert sorted(strata[:, j]) == list(range(n))

    def test_values_in_unit_cube(self):
        U = latin_hypercube(100, 44, rng=1)
        assert U.min() >= 0.0 and U.max() < 1.0

    def test_centered_points_at_cell_midpoints(self):
        U = latin_hypercube(4, 2, rng=2, centered=True)
        frac = (U * 4) % 1.0
        np.testing.assert_allclose(frac, 0.5)

    def test_deterministic_given_seed(self):
        a = latin_hypercube(10, 3, rng=42)
        b = latin_hypercube(10, 3, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            latin_hypercube(0, 3)
        with pytest.raises(ValueError):
            latin_hypercube(5, 0)


class TestMaximin:
    def test_maximin_is_still_latin(self):
        n, dim = 15, 4
        U = maximin_latin_hypercube(n, dim, rng=3, n_candidates=10)
        strata = np.floor(U * n).astype(int)
        for j in range(dim):
            assert sorted(strata[:, j]) == list(range(n))

    def test_maximin_beats_median_single_draw(self):
        rng = np.random.default_rng(4)
        singles = [min_pairwise_distance(latin_hypercube(20, 5, rng))
                   for _ in range(30)]
        best = min_pairwise_distance(
            maximin_latin_hypercube(20, 5, rng=5, n_candidates=20))
        assert best >= np.median(singles)

    def test_rejects_zero_candidates(self):
        with pytest.raises(ValueError):
            maximin_latin_hypercube(5, 2, n_candidates=0)


class TestMinPairwiseDistance:
    def test_known_value(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        assert min_pairwise_distance(pts) == pytest.approx(1.0)

    def test_single_point_is_inf(self):
        assert min_pairwise_distance(np.array([[0.5, 0.5]])) == np.inf

    def test_duplicate_points_zero(self):
        pts = np.array([[0.2, 0.2], [0.2, 0.2]])
        assert min_pairwise_distance(pts) == pytest.approx(0.0, abs=1e-7)
