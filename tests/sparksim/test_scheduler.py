"""Tests for the task schedulers (exact event-driven vs vectorized wave)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparksim import SparkConf
from repro.sparksim.scheduler import (apply_speculation, list_schedule_exact,
                                      list_schedule_fast, stage_makespan)


class TestExactScheduler:
    def test_single_slot_is_sum(self):
        d = np.array([1.0, 2.0, 3.0])
        assert list_schedule_exact(d, 1) == pytest.approx(6.0)

    def test_enough_slots_is_max(self):
        d = np.array([1.0, 5.0, 2.0])
        assert list_schedule_exact(d, 3) == pytest.approx(5.0)

    def test_known_two_slot_case(self):
        # Greedy: slot A gets 3, slot B gets 1 then 2 -> makespan 3.
        d = np.array([3.0, 1.0, 2.0])
        assert list_schedule_exact(d, 2) == pytest.approx(3.0)

    def test_dispatch_serialization_floor(self):
        d = np.full(10, 0.001)
        t = list_schedule_exact(d, 10, dispatch_s=0.1)
        assert t >= 9 * 0.1 + 0.001

    def test_empty_tasks(self):
        assert list_schedule_exact(np.array([]), 4) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            list_schedule_exact(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            list_schedule_exact(np.array([-1.0]), 2)


class TestFastScheduler:
    def test_equal_durations_exactly_matches(self):
        d = np.full(37, 2.5)
        assert list_schedule_fast(d, 8) == pytest.approx(
            list_schedule_exact(d, 8))

    @given(st.integers(1, 200), st.integers(1, 32), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_close_to_exact_under_noise(self, n, slots, seed):
        rng = np.random.default_rng(seed)
        d = np.exp(rng.normal(0.0, 0.15, n))
        fast = list_schedule_fast(d, slots)
        exact = list_schedule_exact(d, slots)
        # Lower bound: a theorem, not a tuned constant.  The wave estimate
        # is max(per-slot sums) >= sum/m with m = min(slots, n), and greedy
        # list scheduling obeys Graham's bound
        #     exact <= sum/m + (1 - 1/m) * dmax,
        # so fast >= exact - (1 - 1/m) * dmax for *every* input.  Earlier
        # revisions asserted fast >= 0.90 * exact, but no multiplicative
        # constant is sound under hypothesis's full search: an exhaustive
        # scan of this strategy's domain found fast/exact = 0.8823 at
        # (n=49, slots=29, seed=9597), where bin-packing luck lets the
        # greedy schedule beat the rigid i % slots wave assignment.
        # Typical-case tightness is covered by the derandomized profile
        # test below and by test_mean_relative_gap_small.
        m = min(slots, n)
        assert fast >= exact - (1 - 1 / m) * d.max() - 1e-9
        assert fast <= exact * 1.25 + d.max() + 1e-9

    # Regimes: serial, slot-rich, balanced, many-wave, n == slots, and a
    # ragged final wave.  Each triple was checked to sit above 0.95 with
    # margin, so this guards typical-case accuracy deterministically while
    # the hypothesis test above guards the provable worst case.
    @pytest.mark.parametrize("n,slots,seed", [
        (1, 1, 0), (5, 8, 1), (20, 4, 2), (50, 16, 3), (100, 32, 4),
        (200, 8, 5), (37, 37, 6), (150, 1, 7), (64, 15, 8), (300, 32, 9),
        (10, 3, 10), (48, 12, 11),
    ])
    def test_profile_accuracy(self, n, slots, seed):
        rng = np.random.default_rng(seed)
        d = np.exp(rng.normal(0.0, 0.15, n))
        fast = list_schedule_fast(d, slots)
        exact = list_schedule_exact(d, slots)
        assert fast >= exact * 0.95 - 1e-9
        assert fast <= exact * 1.25 + d.max() + 1e-9

    def test_mean_relative_gap_small(self):
        """On average the wave approximation is within a few percent."""
        rng = np.random.default_rng(123)
        gaps = []
        for _ in range(60):
            n = int(rng.integers(10, 300))
            slots = int(rng.integers(1, 33))
            d = np.exp(rng.normal(0.0, 0.15, n))
            fast = list_schedule_fast(d, slots)
            exact = list_schedule_exact(d, slots)
            gaps.append(abs(fast - exact) / exact)
        assert np.mean(gaps) < 0.05

    def test_lower_bounds_hold(self):
        rng = np.random.default_rng(1)
        d = rng.random(50)
        t = list_schedule_fast(d, 7)
        assert t >= d.sum() / 7 - 1e-9
        assert t >= d.max() - 1e-9


class TestSpeculation:
    def conf(self, on=True, mult=1.5):
        return SparkConf({"spark.speculation": on,
                          "spark.speculation.multiplier": mult})

    def test_disabled_is_identity(self):
        d = np.array([1.0, 1.0, 50.0])
        out, extra = apply_speculation(d, self.conf(on=False), 4)
        np.testing.assert_array_equal(out, d)
        assert extra == 0.0

    def test_straggler_capped_with_spare_slots(self):
        d = np.concatenate([np.ones(9), [50.0]])
        out, _ = apply_speculation(d, self.conf(), slots=20)
        assert out.max() < 50.0
        assert out.max() >= 2.0  # cap is at least 2x median

    def test_no_spare_slots_no_benefit(self):
        d = np.concatenate([np.ones(16), [50.0]])
        # 17 tasks on 17 slots -> full last wave heuristic limits help.
        out_full, _ = apply_speculation(d, self.conf(), slots=1)
        out_spare, _ = apply_speculation(d, self.conf(), slots=100)
        assert out_spare.max() <= out_full.max()

    def test_fast_tasks_untouched(self):
        d = np.concatenate([np.ones(9), [50.0]])
        out, _ = apply_speculation(d, self.conf(), slots=20)
        np.testing.assert_array_equal(out[:9], d[:9])


class TestStageMakespan:
    def test_returns_waves(self):
        d = np.ones(10)
        t, waves = stage_makespan(d, SparkConf(), slots=4)
        assert waves == 3
        assert t == pytest.approx(3.0)

    def test_exact_flag_consistency(self):
        rng = np.random.default_rng(2)
        d = np.exp(rng.normal(0, 0.1, 40))
        t_fast, _ = stage_makespan(d, SparkConf(), 8)
        t_exact, _ = stage_makespan(d, SparkConf(), 8, exact=True)
        assert abs(t_fast - t_exact) <= d.max()
