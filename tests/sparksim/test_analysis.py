"""Tests for the bottleneck TraceAnalyzer."""

import pytest

from repro.sparksim import (InputSource, SparkSimulator, StageSpec,
                            TraceAnalyzer)

SANE = {
    "spark.executor.cores": 8,
    "spark.executor.memory": 24 * 1024,
    "spark.executor.instances": 15,
    "spark.default.parallelism": 240,
}


@pytest.fixture(scope="module")
def sim():
    return SparkSimulator()


class TestProfiles:
    def test_fractions_sum_to_one(self, sim):
        res = sim.run([StageSpec(name="s", input_mb=4000.0,
                                 compute_s_per_mb=0.02)], SANE, rng=0)
        profile = TraceAnalyzer().analyze(res)
        assert sum(profile.fractions.values()) == pytest.approx(1.0)
        assert profile.total_s == res.duration_s

    def test_compute_heavy_stage_flags_compute(self, sim):
        res = sim.run([StageSpec(name="s", input_mb=2000.0,
                                 compute_s_per_mb=0.5)], SANE, rng=0)
        profile = TraceAnalyzer().analyze(res)
        assert profile.dominant == "compute"

    def test_io_heavy_stage_flags_read(self, sim):
        res = sim.run([StageSpec(name="s", input_mb=30000.0,
                                 compute_s_per_mb=0.0001)], SANE, rng=0)
        profile = TraceAnalyzer().analyze(res)
        assert profile.dominant == "read"

    def test_describe_mentions_dominant(self, sim):
        res = sim.run([StageSpec(name="s", input_mb=2000.0,
                                 compute_s_per_mb=0.5)], SANE, rng=0)
        text = TraceAnalyzer().analyze(res).describe()
        assert "compute" in text

    def test_empty_result_rejected(self):
        from repro.sparksim import ExecutionResult, RunStatus
        empty = ExecutionResult(RunStatus.INVALID, 8.0)
        with pytest.raises(ValueError):
            TraceAnalyzer().analyze(empty)


class TestCompare:
    def test_compare_reports_speedup(self, sim):
        stages = [StageSpec(name="s", input_mb=4000.0,
                            compute_s_per_mb=0.05)]
        slow = sim.run(stages, {"spark.executor.cores": 2,
                                "spark.executor.memory": 8192,
                                "spark.executor.instances": 2}, rng=1)
        fast = sim.run(stages, SANE, rng=1)
        text = TraceAnalyzer().compare(slow, fast)
        assert "speedup" in text
        assert "->" in text
