"""Property-based tests of simulator invariants.

These encode the structural guarantees the tuning experiments depend on:
any decodable configuration yields a well-formed result, determinism under
a fixed seed, monotonicity in dataset size, and agreement between the
vectorized and event-driven scheduler backends end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.space import spark_space
from repro.sparksim import RunStatus, SparkSimulator
from repro.workloads import Dataset, get_workload

SPACE = spark_space()
SIM = SparkSimulator()

unit_vectors = st.lists(st.floats(0.0, 1.0), min_size=SPACE.dim,
                        max_size=SPACE.dim).map(np.array)


class TestTotality:
    @given(unit_vectors)
    @settings(max_examples=60, deadline=None)
    def test_every_configuration_yields_wellformed_result(self, u):
        """No decodable configuration may crash the simulator."""
        conf = SPACE.decode(u)
        res = SIM.run(get_workload("terasort", "D1").build_stages(), conf,
                      rng=0, time_limit_s=480.0)
        assert res.status in RunStatus
        assert np.isfinite(res.duration_s)
        assert res.duration_s > 0
        if not res.ok:
            assert res.failure_reason or res.status is RunStatus.TIMEOUT

    @given(unit_vectors, st.sampled_from(["pagerank", "kmeans",
                                          "connectedcomponents",
                                          "logisticregression"]))
    @settings(max_examples=30, deadline=None)
    def test_all_workloads_total(self, u, name):
        conf = SPACE.decode(u)
        res = SIM.run(get_workload(name, "D1").build_stages(), conf, rng=1,
                      time_limit_s=480.0)
        assert np.isfinite(res.duration_s)


class TestDeterminismAndNoise:
    @given(unit_vectors, st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_fixed_seed_reproduces_exactly(self, u, seed):
        conf = SPACE.decode(u)
        stages = get_workload("kmeans", "D1").build_stages()
        a = SIM.run(stages, conf, rng=seed)
        b = SIM.run(stages, conf, rng=seed)
        assert a.status == b.status
        assert a.duration_s == b.duration_s

    def test_noise_is_bounded(self):
        conf = {"spark.executor.cores": 8,
                "spark.executor.memory": 24 * 1024,
                "spark.executor.instances": 15}
        stages = get_workload("terasort", "D1").build_stages()
        times = [SIM.run(stages, conf, rng=s).duration_s for s in range(20)]
        spread = (max(times) - min(times)) / np.median(times)
        # Shuffle-heavy short-wave jobs show large straggler-driven
        # variance (real clusters do too); it must stay bounded though.
        assert spread < 0.8


class TestMonotonicity:
    # Straggler noise can invert orderings for near-identical scales, so
    # the property is asserted for clearly separated dataset sizes.
    @given(st.floats(5.0, 40.0), st.floats(1.6, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_bigger_dataset_never_faster(self, scale, factor):
        conf = {"spark.executor.cores": 8,
                "spark.executor.memory": 32 * 1024,
                "spark.executor.instances": 15,
                "spark.default.parallelism": 256}
        small = get_workload("terasort", Dataset("a", scale))
        large = get_workload("terasort", Dataset("b", scale * factor))
        t_small = SIM.run(small.build_stages(), conf, rng=3)
        t_large = SIM.run(large.build_stages(), conf, rng=3)
        if t_small.ok and t_large.ok:
            assert t_large.duration_s > t_small.duration_s * 0.9


class TestSchedulerBackends:
    def test_exact_and_fast_agree_end_to_end(self):
        exact_sim = SparkSimulator(exact_scheduler=True)
        conf = {"spark.executor.cores": 8,
                "spark.executor.memory": 24 * 1024,
                "spark.executor.instances": 15,
                "spark.default.parallelism": 200}
        stages = get_workload("pagerank", "D1").build_stages()
        fast = SIM.run(stages, conf, rng=7)
        exact = exact_sim.run(stages, conf, rng=7)
        assert fast.status == exact.status
        assert fast.duration_s == pytest.approx(exact.duration_s, rel=0.15)
