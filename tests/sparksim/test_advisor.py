"""Tests for the static configuration advisor."""

import pytest

from repro.sparksim import SparkConf
from repro.sparksim.advisor import advise


def codes(conf):
    return {w.code for w in advise(conf)}


class TestFatal:
    def test_unplaceable_memory(self):
        ws = advise({"spark.executor.memory": 300 * 1024})
        assert ws[0].code == "no-placement"
        assert ws[0].severity == "fatal"

    def test_no_task_slots(self):
        ws = advise({"spark.executor.cores": 2, "spark.task.cpus": 4})
        assert ws[0].code == "no-task-slots"


class TestWarnings:
    def test_clean_config_mostly_silent(self):
        conf = {"spark.executor.cores": 8,
                "spark.executor.memory": 24 * 1024,
                "spark.executor.instances": 15,
                "spark.default.parallelism": 240}
        assert not any(w.severity == "fatal" for w in advise(conf))
        assert "tiny-task-memory" not in codes(conf)

    def test_spark_defaults_warn_about_heap(self):
        found = codes({})
        assert "heap-mostly-reserved" in found

    def test_cores_stranded_by_giant_memory(self):
        found = codes({"spark.executor.cores": 4,
                       "spark.executor.memory": 170 * 1024,
                       "spark.executor.instances": 10})
        assert "cores-stranded" in found

    def test_fewer_executors_than_requested(self):
        found = codes({"spark.executor.cores": 16,
                       "spark.executor.instances": 40})
        assert "fewer-executors" in found

    def test_tiny_task_memory(self):
        found = codes({"spark.executor.cores": 32,
                       "spark.executor.memory": 4096,
                       "spark.executor.instances": 5})
        assert "tiny-task-memory" in found

    def test_under_parallelized(self):
        found = codes({"spark.executor.cores": 8,
                       "spark.executor.memory": 16 * 1024,
                       "spark.executor.instances": 20,
                       "spark.default.parallelism": 16})
        assert "under-parallelized" in found

    def test_over_parallelized(self):
        found = codes({"spark.executor.cores": 2,
                       "spark.executor.memory": 8 * 1024,
                       "spark.executor.instances": 2,
                       "spark.default.parallelism": 1024})
        assert "over-parallelized" in found

    def test_small_kryo_buffer(self):
        found = codes({"spark.executor.cores": 8,
                       "spark.executor.memory": 16 * 1024,
                       "spark.serializer": "kryo",
                       "spark.kryoserializer.buffer.max": 8})
        assert "small-kryo-buffer" in found

    def test_aggressive_speculation(self):
        found = codes({"spark.executor.cores": 8,
                       "spark.executor.memory": 16 * 1024,
                       "spark.speculation": True,
                       "spark.speculation.multiplier": 1.1})
        assert "aggressive-speculation" in found

    def test_fatal_sorted_first(self):
        ws = advise({"spark.executor.memory": 300 * 1024})
        assert ws[0].severity == "fatal"
