"""Integration-grade tests for the Spark simulator's behaviour."""

import numpy as np
import pytest

from repro.sparksim import (CachedRDD, CacheLevel, InputSource, RunStatus,
                            SparkConf, SparkSimulator, StageSpec)


SANE = {
    "spark.executor.cores": 8,
    "spark.executor.memory": 24 * 1024,
    "spark.executor.instances": 15,
    "spark.default.parallelism": 240,
}


def one_stage(**kw):
    defaults = dict(name="s0", input_mb=2000.0)
    defaults.update(kw)
    return [StageSpec(**defaults)]


@pytest.fixture(scope="module")
def sim():
    return SparkSimulator()


class TestBasics:
    def test_successful_run(self, sim):
        res = sim.run(one_stage(), SANE, rng=0)
        assert res.ok
        assert res.duration_s > 0
        assert len(res.stages) == 1
        assert res.stages[0].tasks >= 1

    def test_empty_stages_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.run([], SANE)

    def test_deterministic_given_seed(self, sim):
        a = sim.run(one_stage(), SANE, rng=42).duration_s
        b = sim.run(one_stage(), SANE, rng=42).duration_s
        assert a == b

    def test_noise_varies_across_seeds(self, sim):
        times = {sim.run(one_stage(), SANE, rng=s).duration_s
                 for s in range(5)}
        assert len(times) == 5

    def test_stage_lookup(self, sim):
        res = sim.run(one_stage(name="parse"), SANE, rng=0)
        assert res.stage("parse").name == "parse"
        with pytest.raises(KeyError):
            res.stage("nope")


class TestScalingBehaviour:
    def test_more_slots_faster_when_many_tasks(self, sim):
        # CPU-heavy stage so compute dominates the shared-disk floor.
        stage = one_stage(input_mb=4000.0, compute_s_per_mb=0.05)
        small = dict(SANE, **{"spark.executor.instances": 2,
                              "spark.executor.cores": 4})
        t_small = sim.run(stage, small, rng=1).duration_s
        t_big = sim.run(stage, SANE, rng=1).duration_s
        assert t_big < t_small

    def test_larger_input_takes_longer(self, sim):
        t1 = sim.run(one_stage(input_mb=1000.0), SANE, rng=2).duration_s
        t2 = sim.run(one_stage(input_mb=8000.0), SANE, rng=2).duration_s
        assert t2 > t1

    def test_shuffle_compression_helps_big_shuffles(self, sim):
        stages = [
            StageSpec(name="map", input_mb=20000.0, shuffle_write_ratio=1.0),
            StageSpec(name="red", input_mb=20000.0,
                      input_source=InputSource.SHUFFLE),
        ]
        on = dict(SANE, **{"spark.shuffle.compress": True})
        off = dict(SANE, **{"spark.shuffle.compress": False})
        assert sim.run(stages, on, rng=3).duration_s < \
            sim.run(stages, off, rng=3).duration_s

    def test_timeout_enforced(self, sim):
        res = sim.run(one_stage(input_mb=500000.0, compute_s_per_mb=0.1),
                      SparkConf(), rng=4, time_limit_s=60.0)
        assert res.status is RunStatus.TIMEOUT
        assert res.duration_s == 60.0


class TestFailures:
    def test_unplaceable_config_invalid(self, sim):
        res = sim.run(one_stage(), {"spark.executor.memory": 400 * 1024},
                      rng=0)
        assert res.status is RunStatus.INVALID

    def test_oom_on_unrollable_cache_partition(self, sim):
        rdd = CachedRDD(name="big", logical_mb=4000.0,
                        level=CacheLevel.MEMORY, expansion=4.0)
        stages = [StageSpec(name="cache-it", input_mb=4000.0, expansion=4.0,
                            cache_output=rdd)]
        res = sim.run(stages, SparkConf(), rng=0)  # 1 GB default executors
        assert res.status is RunStatus.OOM
        assert "working set" in res.failure_reason

    def test_oom_duration_scales_with_retries(self, sim):
        rdd = CachedRDD(name="big", logical_mb=4000.0, expansion=4.0)
        stages = [StageSpec(name="s", input_mb=4000.0, expansion=4.0,
                            cache_output=rdd)]
        quick = dict({"spark.task.maxFailures": 1})
        patient = dict({"spark.task.maxFailures": 8})
        t_quick = sim.run(stages, quick, rng=0).duration_s
        t_patient = sim.run(stages, patient, rng=0).duration_s
        assert t_patient > t_quick

    def test_kryo_buffer_overflow(self, sim):
        conf = dict(SANE, **{"spark.serializer": "kryo",
                             "spark.kryoserializer.buffer.max": 8})
        stages = one_stage(shuffle_write_ratio=0.5, largest_record_mb=64.0)
        res = sim.run(stages, conf, rng=0)
        assert res.status is RunStatus.RUNTIME_ERROR
        assert "kryoserializer" in res.failure_reason

    def test_driver_result_size_limit(self, sim):
        conf = dict(SANE, **{"spark.driver.maxResultSize": 512})
        stages = one_stage(driver_collect_mb=2000.0)
        res = sim.run(stages, conf, rng=0)
        assert res.status is RunStatus.RUNTIME_ERROR

    def test_rpc_message_limit(self, sim):
        conf = dict(SANE, **{"spark.rpc.message.maxSize": 32})
        stages = one_stage(driver_collect_mb=2000.0, partitions=10)
        res = sim.run(stages, conf, rng=0)
        assert res.status is RunStatus.RUNTIME_ERROR
        assert "rpc" in res.failure_reason

    def test_driver_oom_on_huge_collect(self, sim):
        conf = dict(SANE, **{"spark.driver.memory": 1024,
                             "spark.driver.maxResultSize": 8192,
                             "spark.rpc.message.maxSize": 512})
        stages = one_stage(driver_collect_mb=4000.0, partitions=100)
        res = sim.run(stages, conf, rng=0)
        assert res.status is RunStatus.OOM


class TestCaching:
    def _iterative(self, cache_level=CacheLevel.MEMORY, logical=3000.0,
                   iters=3):
        rdd = CachedRDD(name="data", logical_mb=logical, level=cache_level,
                        expansion=2.0, rebuild_cpu_s_per_mb=0.01)
        stages = [StageSpec(name="load", input_mb=logical, expansion=2.0,
                            cache_output=rdd)]
        for i in range(iters):
            stages.append(StageSpec(name=f"iter-{i}", input_mb=logical,
                                    input_source=InputSource.CACHE,
                                    reads_cached="data",
                                    compute_s_per_mb=0.01, expansion=2.0))
        return stages

    def test_cache_hit_fraction_full_when_it_fits(self, sim):
        res = sim.run(self._iterative(), SANE, rng=0)
        assert res.ok
        assert res.stage("iter-0").cache_hit_fraction == pytest.approx(1.0)

    def test_eviction_when_cache_does_not_fit(self, sim):
        tight = dict(SANE, **{"spark.executor.memory": 2048,
                              "spark.executor.instances": 2})
        res = sim.run(self._iterative(logical=20000.0, iters=2), tight, rng=0)
        if res.ok:
            assert res.stage("iter-0").cache_hit_fraction < 0.5

    def test_eviction_slows_iterations(self, sim):
        roomy = dict(SANE)
        tight = dict(SANE, **{"spark.executor.memory": 3072})
        stages = self._iterative(logical=12000.0)
        t_roomy = sim.run(stages, roomy, rng=1)
        t_tight = sim.run(stages, tight, rng=1)
        if t_roomy.ok and t_tight.ok:
            assert t_tight.duration_s > t_roomy.duration_s

    def test_rdd_compress_shrinks_serialized_cache(self, sim):
        stages = self._iterative(cache_level=CacheLevel.MEMORY_SER,
                                 logical=30000.0, iters=1)
        tight = dict(SANE, **{"spark.executor.memory": 6144})
        plain = sim.run(stages, tight, rng=2)
        compressed = sim.run(stages,
                             dict(tight, **{"spark.rdd.compress": True}),
                             rng=2)
        if plain.ok and compressed.ok:
            assert compressed.stage("iter-0").cache_hit_fraction >= \
                plain.stage("iter-0").cache_hit_fraction


class TestSpill:
    def test_undersized_execution_memory_spills(self, sim):
        stages = one_stage(input_mb=20000.0, expansion=4.0,
                           partitions=40, unroll_fraction=0.05)
        tight = dict(SANE, **{"spark.executor.memory": 2048})
        res = sim.run(stages, tight, rng=0)
        assert res.ok
        assert res.stages[0].spilled_mb > 0

    def test_roomy_memory_no_spill(self, sim):
        stages = one_stage(input_mb=2000.0, expansion=2.0)
        res = sim.run(stages, SANE, rng=0)
        assert res.stages[0].spilled_mb == 0.0
