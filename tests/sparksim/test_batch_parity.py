"""``Simulator.run_batch`` must be bit-identical to the scalar loop.

The vectorized batch path (``repro.sparksim.batch``) promises *exact*
equality with calling :meth:`SparkSimulator.run` once per configuration
under identically-spawned RNGs — not approximate agreement.  IEEE floats
make that a strong claim (op order matters), so these tests compare
statuses, durations, failure reasons and full per-stage metric tuples
with ``==``, across fixed workloads, hypothesis-drawn configurations and
randomized stage graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.space import spark_space
from repro.sparksim import SparkSimulator
from repro.sparksim.stage import CachedRDD, CacheLevel, InputSource, StageSpec
from repro.utils.rng import spawn
from repro.workloads import get_workload

SPACE = spark_space()
SIM = SparkSimulator()

unit_vectors = st.lists(st.floats(0.0, 1.0), min_size=SPACE.dim,
                        max_size=SPACE.dim).map(np.array)


def assert_batch_matches_scalar(sim, stages, confs, seed,
                                time_limit_s=480.0):
    """The core contract: spawn the same rngs, compare bit-for-bit."""
    rngs_scalar = spawn(np.random.default_rng(seed), len(confs))
    rngs_batch = spawn(np.random.default_rng(seed), len(confs))
    scalar = [sim.run(stages, c, rng=r, time_limit_s=time_limit_s)
              for c, r in zip(confs, rngs_scalar)]
    batch = sim.run_batch(stages, confs, rngs=rngs_batch,
                          time_limit_s=time_limit_s)
    assert len(batch) == len(scalar)
    for s, b in zip(scalar, batch):
        assert b.status == s.status
        assert b.duration_s == s.duration_s  # bit-identical, not isclose
        assert b.failure_reason == s.failure_reason
        assert b.stages == s.stages


class TestWorkloadParity:
    @pytest.mark.parametrize("name", ["terasort", "pagerank", "kmeans",
                                      "connectedcomponents",
                                      "logisticregression"])
    def test_batch_matches_scalar_loop(self, name):
        stages = get_workload(name, "D1").build_stages()
        rng = np.random.default_rng(7)
        confs = [SPACE.decode(rng.random(SPACE.dim)) for _ in range(6)]
        assert_batch_matches_scalar(SIM, stages, confs, seed=11)

    def test_exact_scheduler_backend(self):
        sim = SparkSimulator(exact_scheduler=True)
        stages = get_workload("terasort", "D1").build_stages()
        rng = np.random.default_rng(8)
        confs = [SPACE.decode(rng.random(SPACE.dim)) for _ in range(4)]
        assert_batch_matches_scalar(sim, stages, confs, seed=12)

    def test_tight_time_limit_censors_identically(self):
        stages = get_workload("terasort", "D1").build_stages()
        rng = np.random.default_rng(9)
        confs = [SPACE.decode(rng.random(SPACE.dim)) for _ in range(6)]
        assert_batch_matches_scalar(SIM, stages, confs, seed=13,
                                    time_limit_s=45.0)

    def test_single_config_batch(self):
        stages = get_workload("kmeans", "D1").build_stages()
        conf = SPACE.decode(np.full(SPACE.dim, 0.5))
        assert_batch_matches_scalar(SIM, stages, [conf], seed=14)


class TestPropertyParity:
    @given(st.lists(unit_vectors, min_size=1, max_size=4),
           st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_configs_bit_identical(self, us, seed):
        confs = [SPACE.decode(u) for u in us]
        stages = get_workload("terasort", "D1").build_stages()
        assert_batch_matches_scalar(SIM, stages, confs, seed=seed)

    @given(unit_vectors,
           st.sampled_from(["pagerank", "kmeans", "connectedcomponents",
                            "logisticregression"]),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_all_workloads_bit_identical(self, u, name, seed):
        stages = get_workload(name, "D1").build_stages()
        assert_batch_matches_scalar(SIM, stages, [SPACE.decode(u)],
                                    seed=seed)


# -- randomized stage graphs ----------------------------------------------------

def _random_stages(draw):
    """A structurally valid random stage DAG (linear chain).

    Mixes the three input sources: the first stage always reads HDFS;
    later stages fetch shuffle output when the predecessor wrote one,
    read a cached RDD when one exists, or fall back to HDFS.
    """
    n = draw(st.integers(1, 5))
    stages = []
    prev_shuffle = 0.0
    cached = None
    for i in range(n):
        if i == 0:
            source, reads = InputSource.HDFS, None
        elif prev_shuffle > 0.0 and draw(st.booleans()):
            source, reads = InputSource.SHUFFLE, None
        elif cached is not None and draw(st.booleans()):
            source, reads = InputSource.CACHE, cached.name
        else:
            source, reads = InputSource.HDFS, None
        shuffle_ratio = draw(st.sampled_from([0.0, 0.3, 1.0, 1.8]))
        cache_out = None
        if draw(st.booleans()):
            cache_out = CachedRDD(
                name=f"rdd{i}",
                logical_mb=draw(st.sampled_from([256.0, 2048.0, 8192.0])),
                level=draw(st.sampled_from([CacheLevel.MEMORY,
                                            CacheLevel.MEMORY_SER])))
        stages.append(StageSpec(
            name=f"s{i}",
            input_mb=draw(st.sampled_from([128.0, 1024.0, 16384.0])),
            input_source=source,
            reads_cached=reads,
            compute_s_per_mb=draw(st.sampled_from([0.002, 0.01, 0.05])),
            shuffle_write_ratio=shuffle_ratio,
            cache_output=cache_out,
            shuffle_agg=draw(st.booleans()),
            broadcast_mb=draw(st.sampled_from([0.0, 64.0])),
            driver_collect_mb=draw(st.sampled_from([0.0, 32.0])),
        ))
        prev_shuffle = shuffle_ratio
        if cache_out is not None:
            cached = cache_out
    return stages


class TestRandomStageGraphs:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_bit_identical(self, data):
        stages = _random_stages(data.draw)
        us = data.draw(st.lists(unit_vectors, min_size=1, max_size=3))
        seed = data.draw(st.integers(0, 10_000))
        confs = [SPACE.decode(u) for u in us]
        assert_batch_matches_scalar(SIM, stages, confs, seed=seed)


class TestValidationAndRngHandling:
    def test_empty_stage_list_rejected(self):
        conf = SPACE.decode(np.full(SPACE.dim, 0.5))
        with pytest.raises(ValueError):
            SIM.run_batch([], [conf])

    def test_rng_count_mismatch_rejected(self):
        stages = get_workload("terasort", "D1").build_stages()
        confs = [SPACE.decode(np.full(SPACE.dim, 0.5))] * 2
        with pytest.raises(ValueError):
            SIM.run_batch(stages, confs, rngs=[np.random.default_rng(0)])

    def test_empty_batch_returns_empty(self):
        stages = get_workload("terasort", "D1").build_stages()
        assert SIM.run_batch(stages, []) == []

    def test_seed_rngs_spawned_like_scalar(self):
        """``rngs=int`` must mean ``spawn(int, B)``, stream-for-stream."""
        stages = get_workload("terasort", "D1").build_stages()
        rng = np.random.default_rng(21)
        confs = [SPACE.decode(rng.random(SPACE.dim)) for _ in range(3)]
        batch = SIM.run_batch(stages, confs, rngs=17, time_limit_s=480.0)
        scalar = [SIM.run(stages, c, rng=r, time_limit_s=480.0)
                  for c, r in zip(confs,
                                  spawn(np.random.default_rng(17), 3))]
        for s, b in zip(scalar, batch):
            assert b.duration_s == s.duration_s
            assert b.stages == s.stages
