"""Tests for executor placement."""

import pytest

from repro.sparksim import SparkConf, place_executors, paper_cluster


def conf(**kv):
    mapping = {
        "spark.executor.cores": kv.get("cores", 4),
        "spark.executor.memory": kv.get("memory_mb", 8192),
        "spark.executor.memoryOverhead": kv.get("overhead_mb", 384),
        "spark.executor.instances": kv.get("instances", 10),
        "spark.task.cpus": kv.get("task_cpus", 1),
    }
    return SparkConf(mapping)


class TestPacking:
    def test_small_executors_all_fit(self):
        p = place_executors(conf(cores=4, memory_mb=8192, instances=10),
                            paper_cluster())
        assert p.executors == 10
        assert p.task_slots == 40
        assert p.viable

    def test_cores_limit_caps_executors(self):
        # 32 cores/node, 16-core executors -> 2 per node, 10 total.
        p = place_executors(conf(cores=16, instances=40), paper_cluster())
        assert p.executors == 10

    def test_memory_limit_caps_executors(self):
        # 192 GB nodes, 100 GB executors -> 1 per node.
        p = place_executors(conf(cores=1, memory_mb=100 * 1024, instances=40),
                            paper_cluster())
        assert p.executors == 5
        assert p.executors_per_node == 1

    def test_giant_executor_does_not_fit(self):
        p = place_executors(conf(memory_mb=300 * 1024), paper_cluster())
        assert p.executors == 0
        assert not p.viable

    def test_overhead_counts_against_memory(self):
        # 190 GB heap + 10 GB overhead > 192 GB node.
        p = place_executors(conf(memory_mb=190 * 1024,
                                 overhead_mb=10 * 1024), paper_cluster())
        assert p.executors == 0

    def test_task_cpus_reduce_slots(self):
        p = place_executors(conf(cores=8, instances=5, task_cpus=4),
                            paper_cluster())
        assert p.task_slots == 5 * 2

    def test_task_cpus_above_cores_means_no_slots(self):
        p = place_executors(conf(cores=2, instances=5, task_cpus=4),
                            paper_cluster())
        assert p.task_slots == 0
        assert not p.viable

    def test_nodes_used_spread(self):
        p = place_executors(conf(instances=3), paper_cluster())
        assert p.nodes_used == 3
        p = place_executors(conf(instances=12), paper_cluster())
        assert p.nodes_used == 5
        assert p.executors_per_node == 3  # ceil(12/5)
