"""Tests for the typed SparkConf view."""

import pytest

from repro.sparksim import SparkConf


class TestDefaults:
    def test_empty_conf_uses_spark_defaults(self):
        conf = SparkConf()
        assert conf.executor_memory_mb == 1024
        assert conf.executor_cores == 1
        assert conf.memory_fraction == 0.6
        assert conf.serializer == "java"
        assert conf.shuffle_compress is True

    def test_partial_override(self):
        conf = SparkConf({"spark.executor.cores": 8})
        assert conf.executor_cores == 8
        assert conf.executor_memory_mb == 1024  # untouched default

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            SparkConf({"spark.nonexistent.option": 1})

    def test_as_dict_returns_copy(self):
        conf = SparkConf()
        d = conf.as_dict()
        d["spark.executor.cores"] = 99
        assert conf.executor_cores == 1


class TestAccessors:
    def test_byte_conversions(self):
        conf = SparkConf({"spark.files.maxPartitionBytes": 64})
        assert conf.max_partition_bytes == 64 * 1024 * 1024

    def test_getitem_and_get(self):
        conf = SparkConf()
        assert conf["spark.executor.cores"] == 1
        assert conf.get("spark.executor.cores") == 1
        assert conf.get("missing", "fallback") == "fallback"

    def test_every_declared_accessor_works(self):
        """Smoke-check all typed accessors against the defaults."""
        conf = SparkConf()
        for name in dir(SparkConf):
            attr = getattr(SparkConf, name)
            if isinstance(attr, property):
                assert getattr(conf, name) is not None
