"""Tests for the unified memory manager model."""

import pytest

from repro.sparksim import SparkConf, executor_memory
from repro.sparksim.memory import RESERVED_MB


def mem(heap_mb=8192, fraction=0.6, storage=0.5, offheap=False,
        offheap_mb=2048):
    return executor_memory(SparkConf({
        "spark.executor.memory": heap_mb,
        "spark.memory.fraction": fraction,
        "spark.memory.storageFraction": storage,
        "spark.memory.offHeap.enabled": offheap,
        "spark.memory.offHeap.size": offheap_mb,
    }))


class TestRegions:
    def test_unified_formula(self):
        m = mem(heap_mb=8192, fraction=0.6)
        assert m.unified_mb == pytest.approx((8192 - RESERVED_MB) * 0.6)

    def test_storage_floor(self):
        m = mem(storage=0.5)
        assert m.storage_floor_mb == pytest.approx(m.unified_mb * 0.5)

    def test_offheap_extends_pools(self):
        base = mem(offheap=False)
        ext = mem(offheap=True, offheap_mb=4096)
        assert ext.total_unified_mb == pytest.approx(base.unified_mb + 4096)
        assert ext.storage_capacity_mb > base.storage_capacity_mb

    def test_tiny_heap_keeps_positive_usable(self):
        m = mem(heap_mb=1024)
        assert m.unified_mb > 0


class TestExecutionAvailability:
    def test_empty_cache_gives_full_pool(self):
        m = mem()
        assert m.execution_available_mb(0.0) == pytest.approx(m.total_unified_mb)

    def test_cache_below_floor_fully_protected(self):
        m = mem()
        cached = m.storage_floor_mb * 0.5
        assert m.execution_available_mb(cached) == \
            pytest.approx(m.total_unified_mb - cached)

    def test_cache_above_floor_evictable(self):
        m = mem()
        cached = m.total_unified_mb  # cache filled everything
        # Execution can evict down to the floor.
        assert m.execution_available_mb(cached) == \
            pytest.approx(m.total_unified_mb - m.storage_floor_mb)


class TestCacheFit:
    def test_no_execution_demand_keeps_everything(self):
        m = mem()
        assert m.cache_fit_mb(0.0) == pytest.approx(m.total_unified_mb)

    def test_heavy_execution_leaves_only_floor(self):
        m = mem()
        assert m.cache_fit_mb(m.total_unified_mb * 2) == \
            pytest.approx(m.storage_floor_mb)

    def test_higher_storage_fraction_protects_more_cache(self):
        lo = mem(storage=0.2)
        hi = mem(storage=0.8)
        demand = lo.total_unified_mb  # saturating execution demand
        assert hi.cache_fit_mb(demand) > lo.cache_fit_mb(demand)
