"""Tests for ExecutionResult / StageMetrics bookkeeping."""

import pytest

from repro.sparksim import ExecutionResult, RunStatus, StageMetrics


def stage(name="s", duration=10.0):
    return StageMetrics(name=name, tasks=4, waves=1, duration_s=duration)


class TestExecutionResult:
    def test_ok_flag(self):
        assert ExecutionResult(RunStatus.SUCCESS, 1.0).ok
        for status in (RunStatus.OOM, RunStatus.TIMEOUT,
                       RunStatus.RUNTIME_ERROR, RunStatus.INVALID):
            assert not ExecutionResult(status, 1.0).ok

    def test_stage_lookup_first_match(self):
        res = ExecutionResult(RunStatus.SUCCESS, 20.0,
                              (stage("a", 5.0), stage("b", 15.0),
                               stage("a", 99.0)))
        assert res.stage("a").duration_s == 5.0

    def test_stage_lookup_missing(self):
        res = ExecutionResult(RunStatus.SUCCESS, 1.0, (stage("a"),))
        with pytest.raises(KeyError):
            res.stage("zzz")

    def test_immutability(self):
        res = ExecutionResult(RunStatus.SUCCESS, 1.0)
        with pytest.raises(AttributeError):
            res.duration_s = 2.0

    def test_status_enum_values_stable(self):
        """Status strings are part of the persisted-record format."""
        assert {s.value for s in RunStatus} == {
            "success", "oom", "runtime_error", "invalid", "timeout"}
