"""Tests for the cluster hardware model."""

import pytest

from repro.sparksim import ClusterSpec, NodeSpec, paper_cluster


class TestNodeSpec:
    def test_paper_node_defaults(self):
        node = NodeSpec()
        assert node.cores == 32               # 2x 16-core Xeon Gold 6130
        assert node.memory_mb == 192 * 1024   # 192 GB
        assert node.net_bw_mbps > 1000        # 10 GbE

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(memory_mb=-1)
        with pytest.raises(ValueError):
            NodeSpec(disk_bw_mbps=0.0)
        with pytest.raises(ValueError):
            NodeSpec(cpu_speed=0.0)

    def test_frozen(self):
        node = NodeSpec()
        with pytest.raises(AttributeError):
            node.cores = 64


class TestClusterSpec:
    def test_paper_cluster_totals(self):
        cluster = paper_cluster()
        assert cluster.n_workers == 5
        assert cluster.total_cores == 160          # worker cores only
        assert cluster.total_memory_mb == 5 * 192 * 1024
        assert cluster.hdfs_replication == 3

    def test_custom_cluster(self):
        small = ClusterSpec(n_workers=2, node=NodeSpec(cores=8,
                                                       memory_mb=32 * 1024))
        assert small.total_cores == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_workers=0)
        with pytest.raises(ValueError):
            ClusterSpec(hdfs_replication=0)


class TestClusterAffectsSimulation:
    def test_smaller_cluster_is_slower(self):
        from repro.sparksim import SparkSimulator
        from repro.workloads import get_workload
        conf = {"spark.executor.cores": 8,
                "spark.executor.memory": 16 * 1024,
                "spark.executor.instances": 10,
                "spark.default.parallelism": 160}
        stages = get_workload("terasort", "D1").build_stages()
        big = SparkSimulator(paper_cluster()).run(stages, conf, rng=1)
        small = SparkSimulator(ClusterSpec(n_workers=2)).run(stages, conf,
                                                             rng=1)
        assert big.ok and small.ok
        assert small.duration_s > big.duration_s
