"""Tests for the DES core and the event-driven stage model."""

import numpy as np
import pytest

from repro.sparksim import SparkConf
from repro.sparksim.engine import EventQueue, Simulation
from repro.sparksim.eventsim import EventDrivenStage, event_driven_makespan
from repro.sparksim.scheduler import list_schedule_exact


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, "x")
        assert q and len(q) == 1


class TestSimulation:
    def test_clock_advances_monotonically(self):
        sim = Simulation()
        seen = []
        sim.on("tick", lambda s, e: seen.append(s.now))
        for t in (5.0, 1.0, 3.0):
            sim.queue.push(t, "tick")
        end = sim.run()
        assert seen == [1.0, 3.0, 5.0]
        assert end == 5.0
        assert sim.processed == 3

    def test_handlers_can_schedule_relative(self):
        sim = Simulation()
        seen = []

        def chain(s, e):
            seen.append(s.now)
            if len(seen) < 3:
                s.schedule(2.0, "chain")

        sim.on("chain", chain)
        sim.schedule(1.0, "chain")
        sim.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_horizon_clamps(self):
        sim = Simulation()
        sim.on("late", lambda s, e: None)
        sim.queue.push(100.0, "late")
        assert sim.run(until=10.0) == 10.0
        assert len(sim.queue) == 1  # unprocessed

    def test_stop_terminates(self):
        sim = Simulation()
        sim.on("halt", lambda s, e: s.stop())
        sim.on("never", lambda s, e: pytest.fail("ran past stop"))
        sim.queue.push(1.0, "halt")
        sim.queue.push(2.0, "never")
        sim.run()
        assert sim.now == 1.0

    def test_unknown_event_kind_raises(self):
        sim = Simulation()
        sim.queue.push(1.0, "mystery")
        with pytest.raises(KeyError):
            sim.run()

    def test_duplicate_handler_rejected(self):
        sim = Simulation()
        sim.on("x", lambda s, e: None)
        with pytest.raises(ValueError):
            sim.on("x", lambda s, e: None)


class TestEventDrivenStage:
    def test_matches_exact_list_schedule_without_speculation(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(1, 80))
            slots = int(rng.integers(1, 16))
            d = np.exp(rng.normal(0.0, 0.2, n))
            stage = EventDrivenStage(d, slots, conf=SparkConf())
            assert stage.run() == pytest.approx(
                list_schedule_exact(d, slots))

    def test_dispatch_cost_serializes_launches(self):
        d = np.full(10, 0.001)
        stage = EventDrivenStage(d, slots=10, dispatch_s=0.5,
                                 conf=SparkConf())
        # Wait: each launch is delayed dispatch_s after slot pickup; with
        # all slots free, tasks dispatch immediately but pay the launch
        # latency, so the makespan is at least dispatch + duration.
        assert stage.run() >= 0.5

    def test_speculation_rescues_straggler(self):
        conf = SparkConf({"spark.speculation": True,
                          "spark.speculation.multiplier": 1.5,
                          "spark.speculation.quantile": 0.5})
        d = np.concatenate([np.ones(19), [60.0]])
        spec = EventDrivenStage(d, slots=8, conf=conf)
        t_spec = spec.run()
        plain = EventDrivenStage(d, slots=8, conf=SparkConf())
        t_plain = plain.run()
        assert spec.speculative_launches >= 1
        assert t_spec < t_plain

    def test_speculation_waits_for_quantile(self):
        conf = SparkConf({"spark.speculation": True,
                          "spark.speculation.multiplier": 1.5,
                          "spark.speculation.quantile": 0.95})
        # The straggler IS the last 5%, so the quantile gate only opens
        # once everything else finished.
        d = np.concatenate([np.ones(19), [60.0]])
        stage = EventDrivenStage(d, slots=20, conf=conf)
        stage.run()
        # A copy may still launch (after 19/20 finished) but never before.
        assert stage.speculative_launches <= 1

    def test_empty_stage(self):
        stage = EventDrivenStage(np.array([]), slots=4, conf=SparkConf())
        assert stage.run() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EventDrivenStage(np.array([-1.0]), 4)
        with pytest.raises(ValueError):
            EventDrivenStage(np.array([1.0]), 0)


class TestMakespanAdapter:
    def test_returns_waves(self):
        t, waves = event_driven_makespan(np.ones(10), SparkConf(), 4)
        assert waves == 3
        assert t == pytest.approx(3.0)

    def test_close_to_fast_path(self):
        from repro.sparksim.scheduler import stage_makespan
        rng = np.random.default_rng(5)
        d = np.exp(rng.normal(0, 0.1, 60))
        t_event, _ = event_driven_makespan(d, SparkConf(), 12)
        t_fast, _ = stage_makespan(d, SparkConf(), 12)
        assert abs(t_event - t_fast) / t_event < 0.15
