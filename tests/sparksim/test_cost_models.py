"""Tests for the GC, disk, network and serialization cost models."""

import numpy as np
import pytest

from repro.sparksim import SparkConf
from repro.sparksim.cluster import NodeSpec
from repro.sparksim.disk import effective_disk_bw, read_seconds, shuffle_write_bw
from repro.sparksim.gcmodel import gc_slowdown
from repro.sparksim.network import (fetch_efficiency, remote_read_seconds,
                                    shuffle_fetch_seconds)
from repro.sparksim.serialization import (codec_model, kryo_buffer_failure,
                                          serializer_model)

NODE = NodeSpec()


class TestGC:
    def test_floor_above_one(self):
        assert gc_slowdown(8192, 0.0, 1.0) >= 1.0

    def test_monotone_in_pressure(self):
        heaps = [gc_slowdown(8192, live, 1.0)
                 for live in np.linspace(0, 8192, 20)]
        assert all(b >= a - 1e-12 for a, b in zip(heaps, heaps[1:]))

    def test_cliff_near_saturation(self):
        relaxed = gc_slowdown(8192, 0.5 * 8192, 1.0)
        squeezed = gc_slowdown(8192, 0.95 * 8192, 1.0)
        assert squeezed > relaxed + 0.3

    def test_alloc_factor_scales_young_gen(self):
        assert gc_slowdown(8192, 0, 2.0) > gc_slowdown(8192, 0, 0.5)

    def test_rejects_bad_heap(self):
        with pytest.raises(ValueError):
            gc_slowdown(0, 1, 1.0)


class TestDisk:
    def test_single_stream_full_bandwidth(self):
        assert effective_disk_bw(NODE, 1) == pytest.approx(NODE.disk_bw_mbps)

    def test_contention_reduces_per_stream_bw(self):
        assert effective_disk_bw(NODE, 8) < NODE.disk_bw_mbps / 4

    def test_aggregate_never_below_half(self):
        agg = effective_disk_bw(NODE, 64) * 64
        assert agg >= NODE.disk_bw_mbps * 0.5 * 0.95

    def test_bigger_buffer_faster_shuffle_writes(self):
        slow = shuffle_write_bw(NODE, 4, buffer_kb=16)
        fast = shuffle_write_bw(NODE, 4, buffer_kb=256)
        assert fast > slow

    def test_read_seconds_linear(self):
        assert read_seconds(100, NODE, 1) == pytest.approx(
            2 * read_seconds(50, NODE, 1))
        assert read_seconds(0, NODE, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_disk_bw(NODE, 0)
        with pytest.raises(ValueError):
            read_seconds(-1, NODE, 1)
        with pytest.raises(ValueError):
            shuffle_write_bw(NODE, 1, 0)


class TestNetwork:
    def test_bigger_window_more_efficient(self):
        small = fetch_efficiency(SparkConf({"spark.reducer.maxSizeInFlight": 8}),
                                 NODE)
        big = fetch_efficiency(SparkConf({"spark.reducer.maxSizeInFlight": 256}),
                               NODE)
        assert big >= small

    def test_efficiency_bounded(self):
        for mb in (8, 48, 256):
            eff = fetch_efficiency(
                SparkConf({"spark.reducer.maxSizeInFlight": mb}), NODE)
            assert 0.05 <= eff <= 0.92

    def test_fetch_time_scales_with_volume(self):
        conf = SparkConf()
        t1 = shuffle_fetch_seconds(1000, conf, NODE, 5)
        t2 = shuffle_fetch_seconds(2000, conf, NODE, 5)
        assert t2 == pytest.approx(2 * t1)

    def test_single_node_all_local(self):
        assert shuffle_fetch_seconds(1000, SparkConf(), NODE, 1) == 0.0

    def test_zero_volume_zero_time(self):
        assert shuffle_fetch_seconds(0, SparkConf(), NODE, 5) == 0.0

    def test_remote_read_bounded_by_disk(self):
        # A remote read can never beat the remote node's disk.
        t = remote_read_seconds(140, NODE)
        assert t >= 1.0 - 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            shuffle_fetch_seconds(-1, SparkConf(), NODE, 5)
        with pytest.raises(ValueError):
            shuffle_fetch_seconds(10, SparkConf(), NODE, 0)


class TestSerialization:
    def test_kryo_faster_and_denser_than_java(self):
        java = serializer_model(SparkConf({"spark.serializer": "java"}))
        kryo = serializer_model(SparkConf({"spark.serializer": "kryo"}))
        assert kryo.ser_mbps > 2 * java.ser_mbps
        assert kryo.size_ratio < java.size_ratio

    def test_kryo_unsafe_speedup(self):
        base = serializer_model(SparkConf({"spark.serializer": "kryo"}))
        unsafe = serializer_model(SparkConf({"spark.serializer": "kryo",
                                             "spark.kryo.unsafe": True}))
        assert unsafe.ser_mbps > base.ser_mbps
        assert unsafe.size_ratio == base.size_ratio

    def test_zstd_compresses_harder_but_slower(self):
        lz4 = codec_model(SparkConf({"spark.io.compression.codec": "lz4"}))
        zstd = codec_model(SparkConf({"spark.io.compression.codec": "zstd"}))
        assert zstd.ratio < lz4.ratio
        assert zstd.comp_mbps < lz4.comp_mbps

    def test_tiny_blocks_hurt(self):
        tiny = codec_model(SparkConf({"spark.io.compression.blockSize": 4}))
        normal = codec_model(SparkConf({"spark.io.compression.blockSize": 32}))
        assert tiny.comp_mbps < normal.comp_mbps
        assert tiny.ratio > normal.ratio

    def test_kryo_buffer_failure_trigger(self):
        conf = SparkConf({"spark.serializer": "kryo",
                          "spark.kryoserializer.buffer.max": 8})
        assert kryo_buffer_failure(conf, largest_record_mb=16.0)
        assert not kryo_buffer_failure(conf, largest_record_mb=4.0)
        java = SparkConf({"spark.serializer": "java"})
        assert not kryo_buffer_failure(java, largest_record_mb=1e9)
