"""Tests for stage specifications."""

import pytest

from repro.sparksim import CachedRDD, CacheLevel, InputSource, StageSpec


class TestStageSpecValidation:
    def test_minimal_stage(self):
        s = StageSpec(name="s", input_mb=100.0)
        assert s.input_source == InputSource.HDFS
        assert s.unroll_fraction == 0.35

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=-1.0)

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, input_source="magic")

    def test_cache_source_requires_name(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, input_source=InputSource.CACHE)

    def test_negative_shuffle_ratio_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, shuffle_write_ratio=-0.5)

    def test_bad_expansion_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, expansion=0.0)

    def test_bad_unroll_fraction_rejected(self):
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, unroll_fraction=0.0)
        with pytest.raises(ValueError):
            StageSpec(name="s", input_mb=1.0, unroll_fraction=1.5)

    def test_frozen(self):
        s = StageSpec(name="s", input_mb=1.0)
        with pytest.raises(AttributeError):
            s.input_mb = 2.0


class TestCachedRDD:
    def test_defaults(self):
        rdd = CachedRDD(name="x", logical_mb=100.0)
        assert rdd.level == CacheLevel.MEMORY
        assert rdd.expansion == 2.5
