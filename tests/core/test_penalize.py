"""Tests for busy-point (local) penalization around in-flight configs."""

import numpy as np

from repro.core import LocalPenalizer
from repro.gp.gpr import GaussianProcessRegressor, default_bo_kernel


def fitted_gp(dim=3, n=20, seed=0):
    """A GP fit on a smooth bowl — enough structure for a finite L."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, dim))
    y = np.sum((X - 0.5) ** 2, axis=1) * 10.0 + rng.normal(0, 0.01, n)
    gp = GaussianProcessRegressor(default_bo_kernel(), alpha=1e-6)
    gp.fit(X, y)
    return gp, X, y


def make_penalizer(pending, seed=0):
    gp, X, y = fitted_gp(dim=pending.shape[1], seed=seed)
    mean = float(y.mean())
    std = float(y.std())
    f_best = (float(y.min()) - mean) / std
    return LocalPenalizer(gp, pending, mean, std, f_best)


class TestPenalties:
    def test_near_zero_at_pending_point(self):
        # A pending point the posterior rates *worse* than the incumbent
        # gets a positive exclusion radius (mu_j - M > 0).
        pending = np.array([[0.85, 0.85, 0.85]])
        pen = make_penalizer(pending)
        at_pending = pen.penalties(pending)
        assert at_pending.shape == (1,)
        assert at_pending[0] < 1e-6  # suppressed where a worker already is

    def test_approaches_one_far_away(self):
        pending = np.array([[0.85, 0.85, 0.85]])
        pen = make_penalizer(pending)
        far = np.array([[0.05, 0.05, 0.05]])
        assert pen.penalties(far)[0] > 0.9

    def test_no_exclusion_when_pending_beats_incumbent(self):
        """A pending point predicted below the best observation has a
        non-positive gap: nothing to exclude, the factor stays ~1."""
        pending = np.array([[0.5, 0.5, 0.5]])  # the bowl minimum
        pen = make_penalizer(pending)
        assert pen.penalties(pending)[0] > 0.99

    def test_monotone_in_distance_from_pending(self):
        pending = np.array([[0.85, 0.85, 0.85]])
        pen = make_penalizer(pending)
        # Candidates marching away from the pending point along a ray.
        steps = np.linspace(0.0, 0.6, 10)
        U = pending + steps[:, None] * (np.array([-1.0, -1.0, -1.0])
                                        / np.sqrt(3.0))
        vals = pen.penalties(U)
        assert np.all(np.diff(vals) >= -1e-12)

    def test_values_in_unit_interval(self):
        pending = np.array([[0.2, 0.8, 0.4], [0.7, 0.3, 0.6]])
        pen = make_penalizer(pending)
        U = np.random.default_rng(1).random((64, 3))
        vals = pen.penalties(U)
        assert np.all(vals >= 0.0) and np.all(vals <= 1.0)

    def test_multiple_pending_points_both_excluded(self):
        p1 = [0.85, 0.85, 0.85]
        p2 = [0.9, 0.1, 0.9]
        pen = make_penalizer(np.array([p1, p2]))
        near_both = pen.penalties(np.array([p1, p2]))
        assert np.all(near_both < 1e-6)
        far = np.array([[0.05, 0.5, 0.05]])
        assert pen.penalties(far)[0] > 0.5


class TestApply:
    def test_shifts_before_multiplying(self):
        """Negative utilities must not be *rewarded* near pending points."""
        pending = np.array([[0.85, 0.85, 0.85]])
        pen = make_penalizer(pending)
        U = np.vstack([pending[0], [0.05, 0.05, 0.05]])
        util = np.array([-5.0, -10.0])  # LCB-style, all negative
        out = pen.apply(util, U)
        assert np.all(out >= 0.0)
        # The candidate sitting on the pending point keeps the higher raw
        # utility; after penalization the far candidate must not win by
        # the sign-flip artifact (shifted best stays 0 only at the min).
        assert out[0] <= (util[0] - util.min())

    def test_preserves_argmax_far_from_pending(self):
        """With pending far away, penalization must not move the winner."""
        pending = np.array([[0.02, 0.02, 0.02]])
        pen = make_penalizer(pending)
        U = np.random.default_rng(3).random((50, 3)) * 0.3 + 0.65
        util = np.random.default_rng(4).random(50)
        out = pen.apply(util, U)
        assert int(np.argmax(out)) == int(np.argmax(util))

    def test_steers_winner_away_from_pending(self):
        """A pending point on the raw argmax hands the win elsewhere."""
        pending = np.array([[0.85, 0.85, 0.85]])
        pen = make_penalizer(pending)
        U = np.vstack([pending[0],
                       np.random.default_rng(5).random((20, 3))])
        util = np.empty(21)
        util[0] = 1.0  # raw argmax sits exactly on the in-flight point
        util[1:] = np.linspace(0.2, 0.9, 20)
        out = pen.apply(util, U)
        assert int(np.argmax(util)) == 0
        assert int(np.argmax(out)) != 0
