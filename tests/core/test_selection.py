"""Tests for Random-Forests parameter selection."""

import numpy as np
import pytest

from repro.core import ParameterSelector
from repro.tuners import SyntheticObjective, synthetic_space


def selector(**kw):
    defaults = dict(n_samples=60, n_trees=60, n_repeats=4, rng=0)
    defaults.update(kw)
    return ParameterSelector(**defaults)


class TestSelection:
    def test_finds_effective_dimensions(self):
        space = synthetic_space(12)
        objective = SyntheticObjective(space, n_effective=3, rng=1)
        result = selector(rng=2).run(objective, space)
        assert set(result.selected) >= {"x0", "x1", "x2"} or \
            len(set(result.selected) & {"x0", "x1", "x2"}) >= 2
        # Inert dimensions should mostly be pruned.
        assert len(result.selected) <= 6

    def test_importances_cover_all_groups(self):
        space = synthetic_space(8)
        objective = SyntheticObjective(space, n_effective=2, rng=3)
        result = selector(rng=4).run(objective, space)
        assert len(result.importances) == len(space.groups())
        vals = [g.importance for g in result.importances]
        assert vals == sorted(vals, reverse=True)

    def test_min_select_floor(self):
        space = synthetic_space(6)
        # Nearly flat objective: nothing passes the threshold.
        objective = SyntheticObjective(space, n_effective=1, scale=0.001,
                                       rng=5)
        result = selector(rng=6, min_select=3, threshold=0.5).run(objective,
                                                                  space)
        assert len(result.selected_groups) == 3

    def test_max_select_cap(self):
        space = synthetic_space(10)
        objective = SyntheticObjective(space, n_effective=5, rng=7)
        result = selector(rng=8, max_select=2).run(objective, space)
        assert len(result.selected_groups) <= 2

    def test_cost_accounts_all_samples(self):
        space = synthetic_space(6)
        objective = SyntheticObjective(space, n_effective=2, rng=9)
        sel = selector(rng=10)
        evals = sel.collect(objective, space)
        result = sel.select(space, evals)
        assert result.n_samples == 60
        assert result.cost_s == pytest.approx(sum(e.cost_s for e in evals))

    def test_selected_order_follows_importance(self):
        space = synthetic_space(10)
        objective = SyntheticObjective(space, n_effective=3, rng=11)
        result = selector(rng=12).run(objective, space)
        order = {g.group: i for i, g in enumerate(result.importances)}
        ranks = [order[g] for g in result.selected_groups]
        assert ranks == sorted(ranks)


class TestValidation:
    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            ParameterSelector(n_samples=5)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            ParameterSelector(threshold=0.0)

    def test_select_needs_enough_evaluations(self):
        space = synthetic_space(4)
        objective = SyntheticObjective(space, rng=0)
        sel = selector()
        evals = sel.collect(objective, space, n_samples=5)
        with pytest.raises(ValueError):
            sel.select(space, evals)
