"""BO engine behaviour on objectives with failure (censored) regions."""

import numpy as np
import pytest

from repro.core import BOEngine
from repro.sampling import latin_hypercube
from repro.sparksim import RunStatus
from repro.tuners import SyntheticObjective, synthetic_space
from repro.tuners.base import Evaluation


class CliffObjective:
    """Quadratic bowl with a hard failure wall at x0 > 0.7.

    Mimics the simulator's OOM cliff: evaluations in the bad region
    return the censored cap as their objective.
    """

    def __init__(self, seed=0, cap=480.0):
        self._inner = SyntheticObjective(synthetic_space(4), n_effective=2,
                                         noise=0.01, rng=seed)
        self.space = self._inner.space
        self.time_limit_s = cap
        self.failures = 0

    def __call__(self, u, time_limit_s=None):
        u = np.asarray(u, dtype=float)
        if u[0] > 0.7:
            self.failures += 1
            return Evaluation(vector=u.copy(),
                              config=self.space.decode(u),
                              objective=self.time_limit_s, cost_s=20.0,
                              status=RunStatus.OOM)
        return self._inner(u, time_limit_s)


class TestCensoredRegions:
    def test_engine_learns_to_avoid_the_cliff(self):
        obj = CliffObjective(seed=1)
        U = latin_hypercube(10, 4, rng=2)
        initial = [obj(u) for u in U]
        failures_before = obj.failures
        engine = BOEngine(rng=3, n_candidates=128, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=30)
        failures_during = obj.failures - failures_before
        # The cliff covers 30% of the axis; BO should sample it far less
        # than uniformly after seeing censored values there.
        assert failures_during <= 0.2 * len(evals) + 1

    def test_engine_still_optimizes_good_region(self):
        obj = CliffObjective(seed=4)
        U = latin_hypercube(10, 4, rng=5)
        initial = [obj(u) for u in U]
        engine = BOEngine(rng=6, n_candidates=128, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=30)
        ok = [e.objective for e in evals if e.ok]
        assert ok
        assert min(ok) < min(e.objective for e in initial if e.ok)

    def test_all_initial_failures_still_works(self):
        """Even a training set of only censored values must not crash."""
        obj = CliffObjective(seed=7)
        U = np.column_stack([np.linspace(0.75, 0.95, 6),
                             np.random.default_rng(8).random((6, 3))])
        initial = [obj(u) for u in U]
        assert all(not e.ok for e in initial)
        engine = BOEngine(rng=9, n_candidates=64, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=10)
        assert len(evals) == 10
