"""BO engine behaviour on objectives with failure (censored) regions."""

import numpy as np
import pytest

from repro.core import BOEngine
from repro.sampling import latin_hypercube
from repro.sparksim import RunStatus
from repro.tuners import SyntheticObjective, synthetic_space
from repro.tuners.base import Evaluation


class CliffObjective:
    """Quadratic bowl with a hard failure wall at x0 > 0.7.

    Mimics the simulator's OOM cliff: evaluations in the bad region
    return the censored cap as their objective.
    """

    def __init__(self, seed=0, cap=480.0):
        self._inner = SyntheticObjective(synthetic_space(4), n_effective=2,
                                         noise=0.01, rng=seed)
        self.space = self._inner.space
        self.time_limit_s = cap
        self.failures = 0

    def __call__(self, u, time_limit_s=None):
        u = np.asarray(u, dtype=float)
        if u[0] > 0.7:
            self.failures += 1
            return Evaluation(vector=u.copy(),
                              config=self.space.decode(u),
                              objective=self.time_limit_s, cost_s=20.0,
                              status=RunStatus.OOM)
        return self._inner(u, time_limit_s)


class TestCensoredRegions:
    def test_engine_learns_to_avoid_the_cliff(self):
        obj = CliffObjective(seed=1)
        U = latin_hypercube(10, 4, rng=2)
        initial = [obj(u) for u in U]
        failures_before = obj.failures
        engine = BOEngine(rng=3, n_candidates=128, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=30)
        failures_during = obj.failures - failures_before
        # The cliff covers 30% of the axis; BO should sample it far less
        # than uniformly after seeing censored values there.
        assert failures_during <= 0.2 * len(evals) + 1

    def test_engine_still_optimizes_good_region(self):
        obj = CliffObjective(seed=4)
        U = latin_hypercube(10, 4, rng=5)
        initial = [obj(u) for u in U]
        engine = BOEngine(rng=6, n_candidates=128, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=30)
        ok = [e.objective for e in evals if e.ok]
        assert ok
        assert min(ok) < min(e.objective for e in initial if e.ok)

    def test_all_initial_failures_still_works(self):
        """Even a training set of only censored values must not crash."""
        obj = CliffObjective(seed=7)
        U = np.column_stack([np.linspace(0.75, 0.95, 6),
                             np.random.default_rng(8).random((6, 3))])
        initial = [obj(u) for u in U]
        assert all(not e.ok for e in initial)
        engine = BOEngine(rng=9, n_candidates=64, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=10)
        assert len(evals) == 10


class AllCensored:
    """Worst case: every observation is censored at the same cap, so the
    observation window has exactly zero spread (no surrogate signal)."""

    def __init__(self, cap=480.0):
        self.space = synthetic_space(4)
        self.time_limit_s = cap

    def __call__(self, u, time_limit_s=None):
        u = np.asarray(u, dtype=float)
        return Evaluation(vector=u.copy(), config=self.space.decode(u),
                          objective=self.time_limit_s, cost_s=20.0,
                          status=RunStatus.OOM)


class TestGracefulDegradation:
    def test_zero_spread_window_falls_back_to_lhs(self):
        """A degenerate window must yield LHS proposals, not a crash."""
        obj = AllCensored()
        U = latin_hypercube(6, 4, rng=1)
        initial = [obj(u) for u in U]
        engine = BOEngine(rng=2, n_candidates=64, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=5)
        assert len(evals) == 5
        assert engine.fallbacks == 5
        assert all(r.chosen_acquisition == "fallback/lhs"
                   for r in engine.records)
        assert all(r.probabilities.size == 0 for r in engine.records)

    def test_recovers_once_spread_appears(self):
        """After one successful (distinct-valued) evaluation the GP path
        resumes: later iterations are no longer fallbacks."""
        obj = CliffObjective(seed=3)
        # All-censored priors, but the search space is mostly good, so
        # LHS proposals quickly land a success and restore the GP path.
        bad = np.column_stack([np.linspace(0.75, 0.95, 5),
                               np.random.default_rng(4).random((5, 3))])
        initial = [obj(u) for u in bad]
        engine = BOEngine(rng=5, n_candidates=64, refine=False)
        evals = engine.minimize(obj, obj.space, initial, budget=8)
        assert len(evals) == 8
        kinds = [r.chosen_acquisition for r in engine.records]
        assert kinds[0] == "fallback/lhs"
        assert any(k != "fallback/lhs" for k in kinds)

    def test_fallback_counter_starts_at_zero(self):
        assert BOEngine(rng=0).fallbacks == 0


class TestSafeStd:
    """The epsilon-floored standardization used throughout the engine."""

    def test_healthy_window_unchanged(self):
        from repro.core.bo import _safe_std
        y = np.array([1.0, 2.0, 5.0])
        assert _safe_std(y) == float(y.std())

    @pytest.mark.parametrize("y", [
        np.array([480.0, 480.0, 480.0]),     # all censored at one cap
        np.array([3.0]),                     # single observation
        np.array([1.0, 1.0 + 1e-15]),        # sub-floor spread
        np.array([np.nan, 1.0]),             # non-finite contamination
    ])
    def test_degenerate_windows_floor_to_one(self, y):
        from repro.core.bo import _safe_std
        assert _safe_std(y) == 1.0
