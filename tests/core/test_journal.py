"""Tests for the crash-safe evaluation journal and its objective wrapper."""

import json

import numpy as np
import pytest

from repro.core.journal import EvalRecord, EvaluationJournal, JournaledObjective
from repro.sparksim import RunStatus
from repro.tuners.base import Evaluation


def make_eval(x=0.25, objective=42.0, **kw):
    defaults = dict(
        vector=np.array([x, 1.0 - x]),
        config={"spark.executor.cores": 8},
        objective=objective,
        cost_s=objective,
        status=RunStatus.SUCCESS,
    )
    defaults.update(kw)
    return Evaluation(**defaults)


class RecordingObjective:
    """Fake objective that logs rng-state and skip interactions."""

    def __init__(self):
        self.state = {"counter": 0}
        self.restored_states = []
        self.skipped = 0
        self.calls = 0

    @property
    def space(self):
        return None

    @property
    def time_limit_s(self):
        return 480.0

    def rng_state(self):
        return dict(self.state)

    def set_rng_state(self, state):
        self.restored_states.append(state)
        self.state = dict(state)

    def skip(self, n=1):
        self.skipped += n

    def __call__(self, u, time_limit_s=None):
        # The outcome depends on the "noise state", exactly like the real
        # objective's simulator noise — so a resume is only bit-identical
        # if the state snapshot was restored correctly.
        self.calls += 1
        self.state["counter"] += 1
        return make_eval(vector=np.asarray(u, dtype=float).copy(),
                         objective=10.0 * self.state["counter"])


class TestJournalFile:
    def test_round_trip(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        journal.write_meta({"tuner": "ROBOTune", "workload": "pagerank/D1"})
        evs = [make_eval(x=0.1), make_eval(x=0.9, objective=7.0,
                                           status=RunStatus.TIMEOUT,
                                           truncated=True, transient=True,
                                           fault="straggler_node",
                                           attempts=3)]
        for i, ev in enumerate(evs):
            journal.append(ev, {"step": i})
        journal.close()

        meta, records = EvaluationJournal(tmp_path / "run.jsonl").load()
        assert meta == {"tuner": "ROBOTune", "workload": "pagerank/D1"}
        assert len(records) == 2
        for rec, ev in zip(records, evs):
            back = rec.to_evaluation()
            assert np.array_equal(back.vector, ev.vector)
            assert back.config == ev.config
            assert back.objective == ev.objective
            assert back.cost_s == ev.cost_s
            assert back.status is ev.status
            assert back.truncated == ev.truncated
            assert back.transient == ev.transient
            assert back.fault == ev.fault
            assert back.attempts == ev.attempts
        assert records[1].rng_state == {"step": 1}

    def test_numpy_values_serialized(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        ev = make_eval(config={"cores": np.int64(8), "frac": np.float64(0.5)})
        journal.append(ev, {"key": np.array([1, 2])})
        journal.close()
        _, records = journal.load()
        assert records[0].config == {"cores": 8, "frac": 0.5}
        assert records[0].rng_state == {"key": [1, 2]}

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = EvaluationJournal(path, fsync=False)
        journal.write_meta({"tuner": "RandomSearch"})
        journal.append(make_eval())
        journal.append(make_eval())
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "eval", "vector": [0.3')   # crash mid-write
        meta, records = EvaluationJournal(path).load()
        assert meta["tuner"] == "RandomSearch"
        assert len(records) == 2
        assert len(EvaluationJournal(path)) == 2

    def test_write_meta_refuses_existing_session(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = EvaluationJournal(path, fsync=False)
        journal.write_meta({"tuner": "ROBOTune"})
        journal.close()
        with pytest.raises(FileExistsError, match="already holds a session"):
            EvaluationJournal(path).write_meta({"tuner": "ROBOTune"})

    def test_missing_journal(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "absent.jsonl")
        assert len(journal) == 0
        with pytest.raises(FileNotFoundError):
            journal.load()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        journal = EvaluationJournal(path, fsync=False)
        journal.append(make_eval())
        journal.close()
        assert path.exists()


class FakeSpace:
    dim = 2

    def decode(self, u):
        return {"x": float(np.asarray(u)[0])}


class RecoverableObjective(RecordingObjective):
    """RecordingObjective with a decodable space (censor recovery path)."""

    @property
    def space(self):
        return FakeSpace()


class SpawnableObjective(RecordingObjective):
    def spawn_view(self):
        return self


class TestDispatchSettle:
    def test_live_calls_write_dispatch_then_settle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = EvaluationJournal(path, fsync=False)
        wrapped = JournaledObjective(RecordingObjective(), journal)
        wrapped(np.array([0.2, 0.8]))
        wrapped(np.array([0.4, 0.6]))
        journal.close()
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert [p["kind"] for p in lines] == ["dispatch", "eval",
                                              "dispatch", "eval"]
        # Each eval settles the dispatch immediately preceding it.
        assert lines[1]["seq"] == lines[0]["seq"] == 0
        assert lines[3]["seq"] == lines[2]["seq"] == 1
        assert journal.pending_dispatches() == []
        assert journal.next_seq() == 2

    def test_unsettled_dispatch_is_pending(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        wrapped = JournaledObjective(RecordingObjective(), journal)
        wrapped(np.array([0.2, 0.8]))
        # Simulate a crash mid-evaluation: dispatch written, no settle.
        journal.append_dispatch(1, np.array([0.4, 0.6]))
        journal.close()
        pending = journal.pending_dispatches()
        assert len(pending) == 1
        assert pending[0].seq == 1
        assert pending[0].vector == [0.4, 0.6]
        assert journal.next_seq() == 2
        assert len(journal) == 1      # only the settled record counts

    def test_record_censored_settles_immediately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = EvaluationJournal(path, fsync=False)
        wrapped = JournaledObjective(RecordingObjective(), journal)
        censored = make_eval(status=RunStatus.TIMEOUT, truncated=True,
                             transient=True, fault="deadline")
        wrapped.record_censored(censored)
        journal.close()
        assert journal.pending_dispatches() == []
        _, records = journal.load()
        assert len(records) == 1
        assert records[0].fault == "deadline"
        assert records[0].seq == 0
        assert journal.next_seq() == 1

    def test_v1_journal_loads_unchanged(self, tmp_path):
        # A pre-supervision journal: eval records with no seq, no dispatches.
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        journal.write_meta({"tuner": "ROBOTune"})
        journal.append(make_eval(x=0.1))
        journal.append(make_eval(x=0.9))
        journal.close()
        meta, records = journal.load()
        assert meta == {"tuner": "ROBOTune"}
        assert len(records) == 2
        assert all(rec.seq is None for rec in records)
        assert journal.pending_dispatches() == []
        assert journal.next_seq() == 0


class TestCrashRecovery:
    def _crashed_session(self, tmp_path, objective_cls=RecordingObjective):
        """One settled evaluation plus one dispatch that never settled."""
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        inner = objective_cls()
        wrapped = JournaledObjective(inner, journal)
        wrapped(np.array([0.2, 0.8]))
        journal.append_dispatch(1, np.array([0.4, 0.6]))
        journal.close()
        return journal

    def test_invalid_recover_mode_rejected(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        with pytest.raises(ValueError, match="recover"):
            JournaledObjective(RecordingObjective(), journal,
                               recover="retry")

    def test_redispatch_reexecutes_and_reuses_seq(self, tmp_path):
        journal = self._crashed_session(tmp_path)
        _, records = journal.load()
        fresh = RecordingObjective()
        resumed = JournaledObjective(fresh, journal, replay=records,
                                     pending=journal.pending_dispatches(),
                                     next_seq=journal.next_seq())
        assert resumed.n_pending == 1
        resumed(np.array([0.2, 0.8]))          # served from the journal
        ev = resumed(np.array([0.4, 0.6]))     # re-executes the crashed one
        assert fresh.calls == 1
        assert ev.fault is None
        assert resumed.n_pending == 0
        journal.close()
        # The re-execution settled the *original* dispatch record.
        assert journal.pending_dispatches() == []
        _, records = journal.load()
        assert records[-1].seq == 1
        # New work continues from the next unused sequence number.
        resumed(np.array([0.6, 0.4]))
        journal.close()
        _, records = journal.load()
        assert records[-1].seq == 2

    def test_censor_writes_off_pending_without_execution(self, tmp_path):
        journal = self._crashed_session(tmp_path, RecoverableObjective)
        _, records = journal.load()
        fresh = RecoverableObjective()
        resumed = JournaledObjective(fresh, journal, replay=records,
                                     pending=journal.pending_dispatches(),
                                     next_seq=journal.next_seq(),
                                     recover="censor")
        resumed(np.array([0.2, 0.8]))
        skipped_before = fresh.skipped
        ev = resumed(np.array([0.4, 0.6]))
        assert fresh.calls == 0                # cluster time not re-paid
        assert ev.fault == "crash_recovery"
        assert ev.status is RunStatus.TIMEOUT
        assert ev.truncated and ev.transient
        assert ev.objective == fresh.time_limit_s
        assert ev.cost_s == fresh.time_limit_s
        assert ev.config == {"x": 0.4}
        # Fault-plan coordinates stay aligned past the censored slot.
        assert fresh.skipped == skipped_before + 1
        assert resumed.n_pending == 0
        journal.close()
        assert journal.pending_dispatches() == []

    def test_censor_prefers_censor_value_hook(self, tmp_path):
        class Hooked(RecoverableObjective):
            def censor_value(self, config, limit_s):
                return 999.0

        journal = self._crashed_session(tmp_path, Hooked)
        _, records = journal.load()
        resumed = JournaledObjective(Hooked(), journal, replay=records,
                                     pending=journal.pending_dispatches(),
                                     next_seq=journal.next_seq(),
                                     recover="censor")
        resumed(np.array([0.2, 0.8]))
        ev = resumed(np.array([0.4, 0.6]))
        assert ev.objective == 999.0

    def test_censor_mode_runs_unrelated_vectors_live(self, tmp_path):
        journal = self._crashed_session(tmp_path, RecoverableObjective)
        _, records = journal.load()
        fresh = RecoverableObjective()
        resumed = JournaledObjective(fresh, journal, replay=records,
                                     pending=journal.pending_dispatches(),
                                     next_seq=journal.next_seq(),
                                     recover="censor")
        resumed(np.array([0.2, 0.8]))
        ev = resumed(np.array([0.9, 0.1]))     # never dispatched pre-crash
        assert fresh.calls == 1
        assert ev.fault is None
        assert resumed.n_pending == 1          # the crashed one still owed


class TestJournaledViews:
    def test_spawn_view_shares_journal_and_sequence(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        wrapped = JournaledObjective(SpawnableObjective(), journal)
        assert wrapped.spawn_view_capable
        views = [wrapped.spawn_view() for _ in range(3)]
        for i, view in enumerate(views):
            view(np.array([0.1 * (i + 1), 0.5]))
        journal.close()
        _, records = journal.load()
        assert sorted(rec.seq for rec in records) == [0, 1, 2]
        assert journal.pending_dispatches() == []
        assert journal.next_seq() == 3

    def test_spawn_view_capable_tracks_inner(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        wrapped = JournaledObjective(RecordingObjective(), journal)
        assert not wrapped.spawn_view_capable  # inner has no spawn_view


class TestJournaledObjective:
    def test_recording_appends_with_rng_snapshot(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        inner = RecordingObjective()
        wrapped = JournaledObjective(inner, journal)
        wrapped(np.array([0.2, 0.8]))
        wrapped(np.array([0.4, 0.6]))
        journal.close()
        _, records = journal.load()
        assert len(records) == 2
        # The snapshot is taken *after* the evaluation consumed its noise.
        assert records[0].rng_state == {"counter": 1}
        assert records[1].rng_state == {"counter": 2}
        assert wrapped.n_replayed == 0

    def test_replay_serves_without_executing(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        inner = RecordingObjective()
        wrapped = JournaledObjective(inner, journal)
        u = [np.array([0.2, 0.8]), np.array([0.4, 0.6])]
        originals = [wrapped(v) for v in u]
        journal.close()

        _, records = journal.load()
        fresh = RecordingObjective()
        resumed = JournaledObjective(fresh, journal, replay=records)
        served = [resumed(v) for v in u]
        assert fresh.calls == 0                 # nothing re-executed
        assert fresh.skipped == 2               # fault index kept aligned
        assert resumed.n_replayed == 2
        for orig, again in zip(originals, served):
            assert np.array_equal(orig.vector, again.vector)
            assert orig.objective == again.objective

    def test_rng_restored_when_replay_drains(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        inner = RecordingObjective()
        wrapped = JournaledObjective(inner, journal)
        straight = [wrapped(np.array([0.1 * i, 0.5])) for i in range(3)]

        _, records = journal.load()
        fresh = RecordingObjective()
        resumed = JournaledObjective(fresh, journal, replay=records[:2])
        resumed(np.array([0.0, 0.5]))
        resumed(np.array([0.1, 0.5]))
        live = resumed(np.array([0.2, 0.5]))
        # State restored from the second snapshot before the live call.
        assert fresh.restored_states == [{"counter": 2}]
        assert live.objective == straight[2].objective
        assert fresh.calls == 1

    def test_vector_mismatch_raises(self, tmp_path):
        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        wrapped = JournaledObjective(RecordingObjective(), journal)
        wrapped(np.array([0.2, 0.8]))
        _, records = journal.load()
        resumed = JournaledObjective(RecordingObjective(), journal,
                                     replay=records)
        with pytest.raises(ValueError, match="journal replay mismatch"):
            resumed(np.array([0.3, 0.7]))

    def test_inner_without_hooks_is_fine(self, tmp_path):
        class Bare:
            space = None
            time_limit_s = 480.0

            def __call__(self, u, time_limit_s=None):
                return make_eval(x=float(np.asarray(u)[0]))

        journal = EvaluationJournal(tmp_path / "run.jsonl", fsync=False)
        wrapped = JournaledObjective(Bare(), journal)
        wrapped(np.array([0.2, 0.8]))
        _, records = journal.load()
        assert records[0].rng_state is None
        resumed = JournaledObjective(Bare(), journal, replay=records)
        ev = resumed(np.array([0.2, 0.8]))     # no skip/set_rng_state hooks
        assert ev.objective == 42.0
