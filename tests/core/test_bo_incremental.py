"""Incremental-GP and refinement behavior of the BO engine."""

import numpy as np

from repro.core import BOEngine
from repro.sampling import latin_hypercube
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=3, seed=0):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=min(3, dim),
                                   noise=0.01, rng=seed)
    U = latin_hypercube(8, dim, rng=seed)
    initial = [objective(u) for u in U]
    return space, objective, initial


def run(engine_kwargs, seed):
    space, objective, initial = make_problem(seed=seed)
    engine = BOEngine(rng=seed + 1, n_candidates=96, **engine_kwargs)
    evals = engine.minimize(objective, space, initial, budget=12)
    return [tuple(e.vector) for e in evals], [e.objective for e in evals]


class TestIncremental:
    def test_default_is_full_refit(self):
        assert BOEngine().incremental is False

    def test_default_matches_explicit_full(self):
        for seed in (0, 5):
            assert run({}, seed) == run({"incremental": False}, seed)

    def test_incremental_finds_comparable_optimum(self):
        # Rank-1 updates drift at float precision, so decision sequences
        # may diverge; optimization quality must not.
        for seed in (0, 3):
            _, obj_full = run({"incremental": False}, seed)
            _, obj_inc = run({"incremental": True}, seed)
            assert min(obj_inc) <= 1.5 * min(obj_full)

    def test_gp_instance_is_reused(self):
        space, objective, initial = make_problem(seed=2)
        engine = BOEngine(rng=3, n_candidates=64)
        engine.minimize(objective, space, initial, budget=4)
        assert engine.last_gp is engine._gp

    def test_incremental_gp_grows_without_refit(self):
        space, objective, initial = make_problem(seed=4)
        engine = BOEngine(rng=5, n_candidates=64, incremental=True,
                          hyperopt_every=100)
        engine.minimize(objective, space, initial, budget=6)
        assert engine.last_gp.X_train_.shape[0] == len(initial) + 6


class TestRefine:
    def test_refined_nominee_never_worse_than_start(self):
        # _refine accepts the polished point only when it does not regress
        # the sweep winner; either way the evaluated point stays within
        # the unit box.
        space, objective, initial = make_problem(seed=6)
        engine = BOEngine(rng=7, n_candidates=64, refine=True)
        evals = engine.minimize(objective, space, initial, budget=6)
        for e in evals:
            v = np.asarray(e.vector)
            assert np.all(v >= 0.0) and np.all(v <= 1.0)
