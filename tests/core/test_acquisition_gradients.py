"""Closed-form acquisition gradients vs numerical differentiation.

The gradients are checked through a real GP posterior: utility as a
function of the input point u, differentiated by chaining the posterior
input-gradients through ``AcquisitionFunction.gradient``, must match
central differences of the plain utility to 1e-6.
"""

import numpy as np
import pytest

from repro.core.acquisition import (AcquisitionFunction,
                                    ExpectedImprovement,
                                    LowerConfidenceBound,
                                    ProbabilityOfImprovement)
from repro.gp import GaussianProcessRegressor

EPS = 1e-6

ACQUISITIONS = [ProbabilityOfImprovement(), ExpectedImprovement(),
                LowerConfidenceBound()]


def fitted_gp(seed=0, n=25, dim=3):
    rng = np.random.default_rng(seed)
    X = rng.random((n, dim))
    y = np.cos(4.0 * X[:, 0]) + X[:, 1] + 0.05 * rng.standard_normal(n)
    return GaussianProcessRegressor(rng=seed).fit(X, y), X, y


class TestAcquisitionGradients:
    @pytest.mark.parametrize("acq", ACQUISITIONS, ids=lambda a: a.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_central_differences_through_gp(self, acq, seed):
        gp, X, y = fitted_gp(seed=seed)
        mean, std = float(y.mean()), float(y.std())
        f_best = (float(y.min()) - mean) / std
        rng = np.random.default_rng(100 + seed)

        def utility(u):
            m, s = gp.fast_predict(u[None])
            return float(acq(np.array([(m[0] - mean) / std]),
                             np.array([s[0] / std]), f_best)[0])

        for _ in range(4):
            u = rng.random(X.shape[1])
            mu, sigma, dmu, dsigma = gp.predict_with_gradient(u)
            grad = acq.gradient((mu - mean) / std, sigma / std, dmu / std,
                                dsigma / std, f_best)
            for j in range(len(u)):
                up = u.copy()
                up[j] += EPS
                um = u.copy()
                um[j] -= EPS
                num = (utility(up) - utility(um)) / (2.0 * EPS)
                assert abs(grad[j] - num) < 1e-6 * max(1.0, abs(num)) + 1e-7

    @pytest.mark.parametrize("acq", ACQUISITIONS, ids=lambda a: a.name)
    def test_gradient_shape(self, acq):
        grad = acq.gradient(0.3, 0.5, np.array([1.0, -2.0]),
                            np.array([0.1, 0.2]), 0.0)
        assert grad.shape == (2,)
        assert np.all(np.isfinite(grad))

    def test_pi_and_ei_zero_at_sigma_floor(self):
        dmu = np.array([1.0, 2.0])
        dsigma = np.array([0.5, -0.5])
        for acq in (ProbabilityOfImprovement(), ExpectedImprovement()):
            np.testing.assert_array_equal(
                acq.gradient(0.2, 0.0, dmu, dsigma, 0.0), np.zeros(2))

    def test_lcb_linear_in_moments(self):
        acq = LowerConfidenceBound(kappa=2.0)
        dmu = np.array([1.0, -1.0])
        dsigma = np.array([0.25, 0.5])
        np.testing.assert_allclose(acq.gradient(0.0, 1.0, dmu, dsigma, 0.0),
                                   -dmu + 2.0 * dsigma)

    def test_base_class_raises(self):
        class Flat(AcquisitionFunction):
            name = "flat"

            def __call__(self, mu, sigma, f_best):
                return np.zeros_like(np.asarray(mu))

        with pytest.raises(NotImplementedError):
            Flat().gradient(0.0, 1.0, np.zeros(2), np.zeros(2), 0.0)
