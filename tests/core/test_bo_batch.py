"""Batched (q-point) BO rounds: constant-liar nomination, concurrent
evaluation, per-point bookkeeping, and determinism."""

import numpy as np
import pytest

from repro.core import BOEngine, MedianGuard
from repro.core.journal import EvaluationJournal, JournaledObjective
from repro.sampling import latin_hypercube
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=4, seed=0, noise=0.01):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=min(3, dim),
                                   noise=noise, rng=seed)
    U = latin_hypercube(8, dim, rng=seed)
    initial = [objective(u) for u in U]
    return space, objective, initial


class TestValidation:
    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            BOEngine(batch_size=0)
        with pytest.raises(ValueError):
            BOEngine(refine_starts=0)

    def test_batch_one_uses_serial_loop(self):
        # batch_size=1 must be decision-identical to the historical path.
        space, objective, initial = make_problem(seed=1)
        serial = BOEngine(rng=2, n_candidates=64)
        a = serial.minimize(objective, space, initial, budget=6)
        space2, objective2, initial2 = make_problem(seed=1)
        batch1 = BOEngine(rng=2, n_candidates=64, batch_size=1)
        b = batch1.minimize(objective2, space2, initial2, budget=6)
        np.testing.assert_array_equal(np.vstack([e.vector for e in a]),
                                      np.vstack([e.vector for e in b]))


class TestBatchedRounds:
    def test_respects_budget_exactly(self):
        space, objective, initial = make_problem(seed=3)
        engine = BOEngine(rng=4, n_candidates=64, batch_size=4)
        evals = engine.minimize(objective, space, initial, budget=10)
        assert len(evals) == 10  # 4 + 4 + truncated final round of 2
        assert objective.n_evaluations == len(initial) + 10

    def test_round_points_are_distinct(self):
        space, objective, initial = make_problem(seed=5)
        engine = BOEngine(rng=6, n_candidates=64, batch_size=4)
        engine.minimize(objective, space, initial, budget=12)
        for start in range(0, 12, 4):
            pts = [tuple(r.point) for r in engine.records[start:start + 4]]
            assert len(set(pts)) == len(pts)

    def test_improves_over_initial_design(self):
        space, objective, initial = make_problem(seed=7)
        engine = BOEngine(rng=8, n_candidates=128, batch_size=4)
        evals = engine.minimize(objective, space, initial, budget=24)
        assert min(e.objective for e in evals) \
            < min(e.objective for e in initial)

    def test_per_point_records(self):
        space, objective, initial = make_problem(seed=9)
        engine = BOEngine(rng=10, n_candidates=64, batch_size=3)
        evals = engine.minimize(objective, space, initial, budget=9)
        assert len(engine.records) == 9
        assert [r.iteration for r in engine.records] == list(range(9))
        for rec, ev in zip(engine.records, evals):
            assert rec.objective == ev.objective

    def test_guard_observes_every_point(self):
        space, objective, initial = make_problem(seed=11)
        guard = MedianGuard(3.0, static_limit_s=480.0)
        engine = BOEngine(rng=12, n_candidates=64, batch_size=4)
        evals = engine.minimize(objective, space, initial, budget=8,
                                guard=guard)
        # Only successes shape the median; every point must be charged.
        expected = sum(e.ok for e in initial) + sum(e.ok for e in evals)
        assert len(guard._times) == expected

    def test_early_stop_counts_per_point(self):
        space, objective, initial = make_problem(seed=13)
        engine = BOEngine(rng=14, n_candidates=64, batch_size=4,
                          early_stop_patience=3)
        evals = engine.minimize(objective, space, initial, budget=40)
        # Stops at a round boundary once the per-point counter trips.
        assert len(evals) < 40
        assert len(evals) % 4 == 0

    def test_worker_count_does_not_change_results(self):
        runs = []
        for n_jobs in (1, 4):
            space, objective, initial = make_problem(seed=15)
            engine = BOEngine(rng=16, n_candidates=64, batch_size=4,
                              n_jobs=n_jobs)
            evals = engine.minimize(objective, space, initial, budget=8)
            runs.append(np.vstack([e.vector for e in evals]))
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_hedge_gains_updated_per_choice(self):
        space, objective, initial = make_problem(seed=17)
        engine = BOEngine(rng=18, n_candidates=64, batch_size=4)
        before = engine.hedge.gains.copy()
        engine.minimize(objective, space, initial, budget=8)
        assert not np.array_equal(engine.hedge.gains, before)


class TestSpawnViewDispatch:
    def test_synthetic_objective_spawns_independent_views(self):
        objective = SyntheticObjective(rng=0)
        v1 = objective.spawn_view()
        v2 = objective.spawn_view()
        u = np.full(objective.space.dim, 0.4)
        e1, e2 = v1(u), v2(u)
        assert e1.objective != e2.objective  # independent noise streams
        assert objective.n_evaluations == 2  # shared counter

    def test_views_share_counter_under_threads(self):
        from repro.utils.parallel import parallel_map
        objective = SyntheticObjective(rng=1)
        views = [objective.spawn_view() for _ in range(8)]
        u = np.full(objective.space.dim, 0.5)
        parallel_map(lambda v: v(u), views, n_jobs=4, backend="thread")
        assert objective.n_evaluations == 8

    def test_journaled_objective_spawns_concurrent_views(self, tmp_path):
        # JournaledObjective implements spawn_view itself (views share
        # the journal behind a lock), so batches through it run
        # concurrently while every point is still journaled.
        space, objective, initial = make_problem(seed=19)
        journal = EvaluationJournal(tmp_path / "batch.jsonl")
        wrapped = JournaledObjective(objective, journal)
        assert wrapped.spawn_view_capable
        engine = BOEngine(rng=20, n_candidates=64, batch_size=3, n_jobs=4)
        evals = engine.minimize(wrapped, space, initial, budget=6)
        assert len(evals) == 6
        assert len(journal) == 6  # every point journaled
        journal.close()

    def test_wrapped_non_spawnable_falls_back_to_serial(self, tmp_path):
        # A spawnable wrapper around a non-spawnable inner objective
        # must still degrade to serial — audibly.
        space, objective, initial = make_problem(seed=19)

        class _Plain:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def __call__(self, u, time_limit_s=None):
                return self._inner(u, time_limit_s)

        journal = EvaluationJournal(tmp_path / "batch2.jsonl")
        wrapped = JournaledObjective(_Plain(objective), journal)
        assert not wrapped.spawn_view_capable
        engine = BOEngine(rng=20, n_candidates=64, batch_size=3, n_jobs=4)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            evals = engine.minimize(wrapped, space, initial, budget=6)
        assert len(evals) == 6
        assert len(journal) == 6  # every point journaled
        journal.close()

    def test_workload_objective_spawn_view(self):
        from repro.space.spark_params import spark_space
        from repro.tuners.objective import WorkloadObjective
        from repro.workloads.registry import get_workload
        space = spark_space()
        objective = WorkloadObjective(get_workload("kmeans", "D1"), space,
                                      rng=0)
        view = objective.spawn_view()
        u = np.full(space.dim, 0.5)
        e1 = view(u, None)
        assert e1.cost_s > 0
        assert objective.n_evaluations == 1

    def test_spawning_is_deterministic(self):
        a = SyntheticObjective(rng=42)
        b = SyntheticObjective(rng=42)
        u = np.full(a.space.dim, 0.3)
        ra = [a.spawn_view()(u).objective for _ in range(3)]
        rb = [b.spawn_view()(u).objective for _ in range(3)]
        assert ra == rb


class TestROBOTuneBatch:
    def test_batch_size_threads_through(self):
        from repro.core.tuner import ROBOTune
        tuner = ROBOTune(batch_size=3,
                         engine_kwargs={"n_candidates": 64, "refine": False},
                         rng=0)
        assert tuner.engine_kwargs["batch_size"] == 3
        objective = SyntheticObjective(rng=1)
        result = tuner.tune(objective, budget=32, rng=2)
        assert result.n_evaluations == 32

    def test_rejects_bad_batch_size(self):
        from repro.core.tuner import ROBOTune
        with pytest.raises(ValueError):
            ROBOTune(batch_size=0)
