"""Tests for the parameter-selection cache and config memoization buffer."""

import json

import pytest

from repro.core import ConfigMemoizationBuffer, ParameterSelectionCache


class TestParameterSelectionCache:
    def test_miss_returns_none(self):
        cache = ParameterSelectionCache()
        assert cache.get("pagerank") is None
        assert "pagerank" not in cache

    def test_put_and_get(self):
        cache = ParameterSelectionCache()
        cache.put("pagerank", ["a", "b"])
        assert cache.get("pagerank") == ["a", "b"]
        assert "pagerank" in cache
        assert len(cache) == 1

    def test_returned_list_is_a_copy(self):
        cache = ParameterSelectionCache()
        cache.put("wl", ["a"])
        cache.get("wl").append("mutated")
        assert cache.get("wl") == ["a"]

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            ParameterSelectionCache().put("wl", [])

    def test_invalidate(self):
        cache = ParameterSelectionCache()
        cache.put("wl", ["a"])
        cache.invalidate("wl")
        assert cache.get("wl") is None
        cache.invalidate("never-existed")  # no-op

    def test_json_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ParameterSelectionCache(path)
        cache.put("pagerank", ["spark.executor.cores"])
        reloaded = ParameterSelectionCache(path)
        assert reloaded.get("pagerank") == ["spark.executor.cores"]
        assert json.loads(path.read_text()) == {
            "pagerank": ["spark.executor.cores"]}


class TestConfigMemoizationBuffer:
    def test_miss_is_empty(self):
        buf = ConfigMemoizationBuffer()
        assert buf.best("pagerank") == []
        assert "pagerank" not in buf

    def test_best_sorted_by_objective(self):
        buf = ConfigMemoizationBuffer()
        buf.add("wl", {"p": 1}, 30.0)
        buf.add("wl", {"p": 2}, 10.0)
        buf.add("wl", {"p": 3}, 20.0)
        best = buf.best("wl", 2)
        assert [m.objective for m in best] == [10.0, 20.0]
        assert best[0].config == {"p": 2}

    def test_capacity_evicts_worst(self):
        buf = ConfigMemoizationBuffer(capacity=2)
        for i, t in enumerate((30.0, 10.0, 20.0)):
            buf.add("wl", {"i": i}, t)
        kept = [m.objective for m in buf.best("wl", 10)]
        assert kept == [10.0, 20.0]

    def test_worse_than_worst_into_full_buffer_dropped(self):
        buf = ConfigMemoizationBuffer(capacity=2)
        buf.add("wl", {}, 10.0)
        buf.add("wl", {}, 20.0)
        buf.add("wl", {}, 99.0)
        assert [m.objective for m in buf.best("wl", 10)] == [10.0, 20.0]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            ConfigMemoizationBuffer().best("wl", -1)
        with pytest.raises(ValueError):
            ConfigMemoizationBuffer(capacity=0)

    def test_dataset_tag_recorded(self):
        buf = ConfigMemoizationBuffer()
        buf.add("wl", {"p": 1}, 5.0, dataset="D2")
        assert buf.best("wl")[0].dataset == "D2"

    def test_json_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "memo.json"
        buf = ConfigMemoizationBuffer(path)
        buf.add("pagerank", {"spark.executor.cores": 8}, 42.5, dataset="D1")
        reloaded = ConfigMemoizationBuffer(path)
        best = reloaded.best("pagerank")
        assert best[0].objective == 42.5
        assert best[0].config == {"spark.executor.cores": 8}
        assert best[0].dataset == "D1"

    def test_block_removes_and_refuses(self):
        buf = ConfigMemoizationBuffer()
        buf.add("wl", {"p": 1}, 10.0)
        buf.add("wl", {"p": 2}, 20.0)
        buf.block("wl", {"p": 1})
        assert buf.is_blocked("wl", {"p": 1})
        assert [m.config for m in buf.best("wl")] == [{"p": 2}]
        buf.add("wl", {"p": 1}, 5.0)          # silently refused
        assert [m.config for m in buf.best("wl")] == [{"p": 2}]

    def test_block_is_per_workload(self):
        buf = ConfigMemoizationBuffer()
        buf.block("wl-a", {"p": 1})
        assert not buf.is_blocked("wl-b", {"p": 1})
        buf.add("wl-b", {"p": 1}, 10.0)
        assert len(buf.best("wl-b")) == 1

    def test_block_before_any_add(self):
        buf = ConfigMemoizationBuffer()
        buf.block("wl", {"p": 1})             # no table bucket yet
        buf.block("wl", {"p": 1})             # idempotent
        buf.add("wl", {"p": 1}, 10.0)
        assert buf.best("wl") == []

    def test_block_emits_event(self):
        from repro.obs import InMemorySink, Tracer
        buf = ConfigMemoizationBuffer()
        sink = InMemorySink()
        buf.tracer = Tracer([sink])
        buf.block("wl", {"p": 1})
        events = [e for e in sink.events() if e["type"] == "memo.block"]
        assert len(events) == 1
        assert events[0]["data"]["workload"] == "wl"
        assert events[0]["data"]["blocked"] == 1

    def test_blocklist_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "memo.json"
        buf = ConfigMemoizationBuffer(path)
        buf.add("wl", {"p": 2}, 20.0)
        buf.block("wl", {"p": 1})
        raw = json.loads(path.read_text())
        assert raw["__blocked__"] == {"wl": [{"p": 1}]}
        reloaded = ConfigMemoizationBuffer(path)
        assert reloaded.is_blocked("wl", {"p": 1})
        reloaded.add("wl", {"p": 1}, 5.0)     # still refused after reload
        assert [m.config for m in reloaded.best("wl")] == [{"p": 2}]

    def test_blocklist_key_absent_when_empty(self, tmp_path):
        path = tmp_path / "memo.json"
        buf = ConfigMemoizationBuffer(path)
        buf.add("wl", {"p": 1}, 10.0)
        assert "__blocked__" not in json.loads(path.read_text())

    def test_empty_buffer_is_falsy_but_shareable(self):
        """Regression test: ROBOTune must keep a passed-in empty store."""
        from repro.core import ROBOTune
        buf = ConfigMemoizationBuffer()
        cache = ParameterSelectionCache()
        tuner = ROBOTune(selection_cache=cache, memo_buffer=buf)
        assert tuner.memo_buffer is buf
        assert tuner.selection_cache is cache
