"""Tests for the PI/EI/LCB acquisition functions (paper eqs. 2-4)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core import (DEFAULT_KAPPA, DEFAULT_XI, ExpectedImprovement,
                        LowerConfidenceBound, ProbabilityOfImprovement)


MU = np.array([0.0, -1.0, 1.0, -3.0])
SIGMA = np.array([1.0, 0.5, 2.0, 0.1])
F_BEST = 0.0


class TestPI:
    def test_matches_closed_form(self):
        pi = ProbabilityOfImprovement(xi=0.01)
        expected = norm.cdf((F_BEST - MU - 0.01) / SIGMA)
        np.testing.assert_allclose(pi(MU, SIGMA, F_BEST), expected)

    def test_probability_range(self):
        pi = ProbabilityOfImprovement()
        vals = pi(MU, SIGMA, F_BEST)
        assert np.all((vals >= 0) & (vals <= 1))

    def test_zero_sigma_degenerates_to_indicator(self):
        pi = ProbabilityOfImprovement(xi=0.0)
        vals = pi(np.array([-1.0, 1.0]), np.zeros(2), 0.0)
        np.testing.assert_allclose(vals, [1.0, 0.0])

    def test_lower_mean_preferred(self):
        pi = ProbabilityOfImprovement()
        vals = pi(np.array([-2.0, 0.5]), np.array([1.0, 1.0]), 0.0)
        assert vals[0] > vals[1]


class TestEI:
    def test_matches_closed_form(self):
        ei = ExpectedImprovement(xi=0.01)
        d = F_BEST - MU - 0.01
        z = d / SIGMA
        expected = d * norm.cdf(z) + SIGMA * norm.pdf(z)
        np.testing.assert_allclose(ei(MU, SIGMA, F_BEST), expected)

    def test_nonnegative(self):
        ei = ExpectedImprovement()
        assert np.all(ei(MU, SIGMA, F_BEST) >= 0)

    def test_zero_sigma_gives_zero(self):
        ei = ExpectedImprovement()
        np.testing.assert_allclose(ei(np.array([-5.0]), np.array([0.0]), 0.0),
                                   [0.0])

    def test_uncertainty_rewarded_at_equal_mean(self):
        ei = ExpectedImprovement()
        vals = ei(np.array([0.5, 0.5]), np.array([0.1, 2.0]), 0.0)
        assert vals[1] > vals[0]


class TestLCB:
    def test_matches_closed_form(self):
        lcb = LowerConfidenceBound(kappa=1.96)
        np.testing.assert_allclose(lcb(MU, SIGMA, F_BEST),
                                   -(MU - 1.96 * SIGMA))

    def test_kappa_zero_is_pure_exploitation(self):
        lcb = LowerConfidenceBound(kappa=0.0)
        np.testing.assert_allclose(lcb(MU, SIGMA, F_BEST), -MU)

    def test_kappa_validation(self):
        with pytest.raises(ValueError):
            LowerConfidenceBound(kappa=-1.0)

    def test_ignores_f_best(self):
        lcb = LowerConfidenceBound()
        np.testing.assert_allclose(lcb(MU, SIGMA, 0.0), lcb(MU, SIGMA, 99.0))


class TestDefaults:
    def test_paper_knobs(self):
        assert DEFAULT_XI == 0.01
        assert DEFAULT_KAPPA == 1.96
        assert ProbabilityOfImprovement().xi == DEFAULT_XI
        assert LowerConfidenceBound().kappa == DEFAULT_KAPPA

    def test_names(self):
        assert ProbabilityOfImprovement().name == "PI"
        assert ExpectedImprovement().name == "EI"
        assert LowerConfidenceBound().name == "LCB"
