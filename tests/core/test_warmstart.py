"""Tests for journal-backed warm starts and the large-n surrogate paths."""

import numpy as np
import pytest

from repro.core import BOEngine, ConfigMemoizationBuffer, WarmStartData
from repro.core.bo import _ContextGP
from repro.core.journal import EvaluationJournal
from repro.core.warmstart import journal_paths, load_warm_start, scan_journals
from repro.gp import GaussianProcessRegressor, LowRankGaussianProcessRegressor
from repro.obs import InMemorySink, Tracer
from repro.sampling import latin_hypercube
from repro.space.spark_params import spark_space
from repro.sparksim import RunStatus
from repro.tuners import SyntheticObjective, synthetic_space
from repro.tuners.base import Evaluation
from repro.workloads.registry import get_workload


def write_journal(path, workload_key, configs, objectives, faults=None):
    journal = EvaluationJournal(path, fsync=False)
    journal.write_meta({"tuner": "ROBOTune", "workload": workload_key,
                        "budget": len(configs)})
    faults = faults or [None] * len(configs)
    for conf, obj, fault in zip(configs, objectives, faults):
        journal.append(Evaluation(
            vector=np.zeros(1), config=conf, objective=obj, cost_s=obj,
            status=RunStatus.SUCCESS, fault=fault))
    journal.close()
    return path


@pytest.fixture()
def space():
    return spark_space()


class TestJournalPaths:
    def test_missing_directory_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            journal_paths(tmp_path / "nope")

    def test_empty_directory_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="no.*journal files"):
            journal_paths(tmp_path)

    def test_finds_journals(self, tmp_path):
        write_journal(tmp_path / "a.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": 4}], [10.0])
        assert len(journal_paths(tmp_path)) == 1

    def test_scan_skips_unparsable_files(self, tmp_path):
        write_journal(tmp_path / "a.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": 4}], [10.0])
        (tmp_path / "b.jsonl").write_text("not json\n")
        assert len(scan_journals(tmp_path)) >= 1


class TestLoadWarmStart:
    def test_matches_workload_across_datasets(self, tmp_path, space):
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": c} for c in (2, 4, 6)],
                      [10.0, 12.0, 14.0])
        write_journal(tmp_path / "d2.jsonl", "pagerank/D2",
                      [{"spark.executor.cores": c} for c in (8, 10)],
                      [20.0, 22.0])
        write_journal(tmp_path / "other.jsonl", "kmeans/D1",
                      [{"spark.executor.cores": 12}], [30.0])
        wl = get_workload("pagerank", "D1")
        data = load_warm_start(tmp_path, wl, space)
        assert data is not None
        assert data.n == 5                     # kmeans journal skipped
        assert len(data.sources) == 2
        assert data.X.shape == (5, space.dim)
        assert np.all((0 < data.sizes) & (data.sizes <= 1.0))
        assert 0 < data.current_size <= 1.0

    def test_datasize_feature_orders_with_scale(self, tmp_path, space):
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": 2}], [10.0])
        write_journal(tmp_path / "d3.jsonl", "pagerank/D3",
                      [{"spark.executor.cores": 4}], [30.0])
        wl = get_workload("pagerank", "D1")
        data = load_warm_start(tmp_path, wl, space)
        by_y = dict(zip(data.y, data.sizes))
        assert by_y[10.0] < by_y[30.0]         # D1 is smaller than D3
        assert by_y[30.0] == pytest.approx(1.0)  # D3 is the largest scale

    def test_accept_workloads_admits_mapped_names(self, tmp_path, space):
        write_journal(tmp_path / "other.jsonl", "kmeans/D1",
                      [{"spark.executor.cores": 12}], [30.0])
        wl = get_workload("pagerank", "D1")
        assert load_warm_start(tmp_path, wl, space) is None
        data = load_warm_start(tmp_path, wl, space,
                               accept_workloads=["kmeans"])
        assert data is not None and data.n == 1

    def test_duplicate_configs_deduped(self, tmp_path, space):
        conf = {"spark.executor.cores": 4}
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [conf, conf, conf], [10.0, 10.5, 11.0])
        wl = get_workload("pagerank", "D1")
        data = load_warm_start(tmp_path, wl, space)
        assert data.n == 1

    def test_memoized_configs_dropped(self, tmp_path, space):
        memo = ConfigMemoizationBuffer()
        kept = {"spark.executor.cores": 2}
        remembered = {"spark.executor.cores": 8}
        memo.add("pagerank", remembered, 5.0, dataset="D1")
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [kept, remembered], [10.0, 5.0])
        wl = get_workload("pagerank", "D1")
        data = load_warm_start(tmp_path, wl, space, memo=memo)
        assert data.n == 1

    def test_crash_recovery_records_skipped(self, tmp_path, space):
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": 2},
                       {"spark.executor.cores": 4}],
                      [10.0, 12.0], faults=[None, "crash_recovery"])
        wl = get_workload("pagerank", "D1")
        data = load_warm_start(tmp_path, wl, space)
        assert data.n == 1

    def test_max_points_thins_deterministically(self, tmp_path, space):
        confs = [{"spark.executor.cores": 2, "spark.task.cpus": 1,
                  "spark.executor.memory": 2 + i % 14} for i in range(40)]
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1", confs,
                      [float(i) for i in range(40)])
        wl = get_workload("pagerank", "D1")
        a = load_warm_start(tmp_path, wl, space, max_points=7)
        b = load_warm_start(tmp_path, wl, space, max_points=7)
        assert a.n <= 7
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_emits_load_event(self, tmp_path, space):
        write_journal(tmp_path / "d1.jsonl", "pagerank/D1",
                      [{"spark.executor.cores": 2}], [10.0])
        sink = InMemorySink()
        tracer = Tracer([sink])
        wl = get_workload("pagerank", "D1")
        load_warm_start(tmp_path, wl, space, tracer=tracer)
        tracer.close()
        events = [r for r in sink.records if r.get("type") == "warmstart.load"]
        assert len(events) == 1
        assert events[0]["data"]["n"] == 1


class TestWarmStartData:
    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            WarmStartData(X=np.zeros(3), y=np.zeros(3), sizes=np.ones(3),
                          current_size=1.0)
        with pytest.raises(ValueError):
            WarmStartData(X=np.zeros((3, 2)), y=np.zeros(2),
                          sizes=np.ones(3), current_size=1.0)
        with pytest.raises(ValueError):
            WarmStartData(X=np.zeros((3, 2)), y=np.zeros(3),
                          sizes=np.ones(3), current_size=0.0)


class TestContextGP:
    def test_strips_context_dimension(self):
        rng = np.random.default_rng(0)
        Xw = rng.random((6, 3))
        Xc = rng.random((10, 3))
        size = 0.75
        joint = np.vstack([np.hstack([Xw, np.full((6, 1), 0.4)]),
                           np.hstack([Xc, np.full((10, 1), size)])])
        y = rng.random(16)
        inner = GaussianProcessRegressor(optimize=False).fit(joint, y)
        view = _ContextGP(inner, n_warm=6, size=size)
        np.testing.assert_array_equal(view.X_train_, Xc)
        np.testing.assert_array_equal(view.y_train_, y[6:])
        Q = rng.random((5, 3))
        mu, sd = view.predict(Q, return_std=True)
        Qa = np.hstack([Q, np.full((5, 1), size)])
        mu_i, sd_i = inner.predict(Qa, return_std=True)
        np.testing.assert_array_equal(mu, mu_i)
        np.testing.assert_array_equal(sd, sd_i)

    def test_gradient_drops_context_coordinate(self):
        rng = np.random.default_rng(1)
        joint = rng.random((12, 4))
        y = rng.random(12)
        inner = GaussianProcessRegressor(optimize=False).fit(joint, y)
        view = _ContextGP(inner, n_warm=0, size=0.5)
        mu, sd, dmu, dsd = view.predict_with_gradient(np.full(3, 0.5))
        assert dmu.shape == (3,)
        assert dsd.shape == (3,)


def make_problem(dim=4, seed=0):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=3, noise=0.01, rng=seed)
    U = latin_hypercube(8, dim, rng=seed)
    initial = [objective(u) for u in U]
    return space, objective, initial


class TestEngineWarmStart:
    def _warm(self, dim, n=10, seed=5):
        rng = np.random.default_rng(seed)
        return WarmStartData(X=rng.random((n, dim)), y=rng.random(n) * 50,
                             sizes=np.full(n, 0.5), current_size=1.0)

    def test_surrogate_trains_on_joint_rows(self):
        space, objective, initial = make_problem(seed=1)
        ws = self._warm(space.dim, n=10)
        engine = BOEngine(rng=2, n_candidates=64, refine=False,
                          warm_start=ws)
        evals = engine.minimize(objective, space, initial, budget=3)
        assert len(evals) == 3                 # warm rows consume no budget
        # Inner GP sees warm + live rows, each with the context column.
        assert engine.last_gp.X_train_.shape == \
            (10 + len(initial) + 3, space.dim + 1)

    def test_decisions_identical_without_warm_start(self):
        space, objective, initial = make_problem(seed=3)
        base = BOEngine(rng=4, n_candidates=64, refine=False)
        evals_a = base.minimize(objective, space, initial, budget=5)
        space2, objective2, initial2 = make_problem(seed=3)
        again = BOEngine(rng=4, n_candidates=64, refine=False)
        evals_b = again.minimize(objective2, space2, initial2, budget=5)
        for a, b in zip(evals_a, evals_b):
            np.testing.assert_array_equal(a.vector, b.vector)
        assert again.last_gp.X_train_.shape[1] == space.dim

    def test_rejects_non_warmstartdata(self):
        with pytest.raises(TypeError):
            BOEngine(warm_start={"X": np.zeros((2, 2))})


class TestGPModeSwitch:
    def test_exact_below_threshold_lowrank_above(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        engine = BOEngine(rng=0, gp_max_exact=5, gp_inducing=4,
                          tracer=tracer)
        assert isinstance(engine._select_gp(3), GaussianProcessRegressor)
        assert isinstance(engine._select_gp(10),
                          LowRankGaussianProcessRegressor)
        assert tracer.counters.get("gp.mode.switch", 0) == 1
        tracer.close()
        modes = [r["data"]["mode"] for r in sink.records
                 if r.get("type") == "gp.mode"]
        assert modes == ["exact", "lowrank"]

    def test_lowrank_kicks_in_during_minimize(self):
        space, objective, initial = make_problem(seed=7)
        engine = BOEngine(rng=8, n_candidates=32, refine=False,
                          gp_max_exact=len(initial) + 2, gp_inducing=8,
                          hyperopt_every=1000)
        engine.minimize(objective, space, initial, budget=6)
        assert isinstance(engine.last_gp, LowRankGaussianProcessRegressor)

    def test_validation(self):
        with pytest.raises(ValueError):
            BOEngine(gp_max_exact=1)
        with pytest.raises(ValueError):
            BOEngine(gp_inducing=0)
        with pytest.raises(ValueError):
            BOEngine(gp_chunk=4)


class TestChunkedSweeps:
    def test_blocks_match_single_call(self):
        rng = np.random.default_rng(0)
        X = rng.random((30, 3))
        y = rng.random(30)
        gp = GaussianProcessRegressor(optimize=False).fit(X, y)
        sink = InMemorySink()
        tracer = Tracer([sink])
        engine = BOEngine(rng=1, gp_chunk=8, tracer=tracer)
        U = rng.random((20, 3))
        mu_b, sd_b = engine._predict_sweep(gp, U)
        mu, sd = gp.predict(U, return_std=True)
        np.testing.assert_allclose(mu_b, mu, atol=1e-10)
        np.testing.assert_allclose(sd_b, sd, atol=1e-10)
        assert tracer.counters["gp.chunk.blocks"] == 3     # 8 + 8 + 4
        tracer.close()
        chunk_events = [r for r in sink.records if r.get("type") == "gp.chunk"]
        assert len(chunk_events) == 1
        assert chunk_events[0]["data"]["blocks"] == 3

    def test_single_block_is_bitwise_identical(self):
        rng = np.random.default_rng(2)
        X = rng.random((25, 3))
        y = rng.random(25)
        gp = GaussianProcessRegressor(optimize=False).fit(X, y)
        engine = BOEngine(rng=3)                # default chunk: 1024
        U = rng.random((100, 3))
        mu_s, sd_s = engine._predict_sweep(gp, U)
        mu, sd = gp.predict(U, return_std=True)
        np.testing.assert_array_equal(mu_s, mu)
        np.testing.assert_array_equal(sd_s, sd)
