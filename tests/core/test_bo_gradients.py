"""Gradient-powered BO: jac-driven refinement, the refine acceptance
rule, and the post-evaluation refit cache."""

import numpy as np

from repro.core import BOEngine
from repro.core.bo import _safe_std
from repro.gp.gpr import GaussianProcessRegressor
from repro.sampling import latin_hypercube
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=4, seed=0, noise=0.01):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=min(3, dim),
                                   noise=noise, rng=seed)
    U = latin_hypercube(8, dim, rng=seed)
    initial = [objective(u) for u in U]
    return space, objective, initial


class TestGradientMode:
    def test_improves_over_initial_design(self):
        space, objective, initial = make_problem(seed=1)
        engine = BOEngine(rng=2, n_candidates=128, gradients=True)
        evals = engine.minimize(objective, space, initial, budget=25)
        assert min(e.objective for e in evals) \
            < min(e.objective for e in initial)

    def test_approaches_known_optimum(self):
        space, objective, initial = make_problem(seed=3)
        engine = BOEngine(rng=4, n_candidates=256, gradients=True)
        evals = engine.minimize(objective, space, initial, budget=40)
        assert min(e.objective for e in evals) < 15.0

    def test_default_off_keeps_historical_decisions(self):
        space, objective, initial = make_problem(seed=5)
        a = BOEngine(rng=6, n_candidates=64) \
            .minimize(objective, space, initial, budget=6)
        space2, objective2, initial2 = make_problem(seed=5)
        b = BOEngine(rng=6, n_candidates=64, gradients=False) \
            .minimize(objective2, space2, initial2, budget=6)
        np.testing.assert_array_equal(np.vstack([e.vector for e in a]),
                                      np.vstack([e.vector for e in b]))

    def test_combines_with_batch_mode(self):
        space, objective, initial = make_problem(seed=7)
        engine = BOEngine(rng=8, n_candidates=64, gradients=True,
                          batch_size=4)
        evals = engine.minimize(objective, space, initial, budget=12)
        assert len(evals) == 12


def fitted_engine_gp(seed=0):
    """A fitted GP plus the standardization constants _refine expects."""
    rng = np.random.default_rng(seed)
    X = rng.random((20, 3))
    y = 10.0 + 100.0 * np.sum((X - 0.3) ** 2, axis=1)
    gp = GaussianProcessRegressor(rng=seed).fit(X, y)
    mean, std = float(y.mean()), _safe_std(y)
    f_best = (float(y.min()) - mean) / std
    return gp, y, mean, std, f_best


class TestRefineAcceptance:
    def _util(self, acq, gp, mean, std, f_best, u):
        m, s = gp.fast_predict(u[None])
        return float(acq(np.array([(m[0] - mean) / std]),
                         np.array([s[0] / std]), f_best)[0])

    def test_never_regresses_sweep_winner(self):
        # L-BFGS-B can report success at a point worse than its start;
        # the acceptance rule must discard such regressions.
        engine = BOEngine(rng=0, n_candidates=64)
        gp, y, mean, std, f_best = fitted_engine_gp(seed=0)
        rng = np.random.default_rng(1)
        for acq in engine.hedge.functions:
            for _ in range(10):
                start = rng.random(3)
                start_util = self._util(acq, gp, mean, std, f_best, start)
                out = engine._refine(acq, gp, start, f_best, mean, std,
                                     start_util)
                out_util = self._util(acq, gp, mean, std, f_best, out)
                assert out_util >= start_util - 1e-12

    def test_gradient_refine_never_regresses_best_start(self):
        engine = BOEngine(rng=0, n_candidates=64, gradients=True)
        gp, y, mean, std, f_best = fitted_engine_gp(seed=2)
        rng = np.random.default_rng(3)
        for acq in engine.hedge.functions:
            starts = rng.random((4, 3))
            utils = np.array([self._util(acq, gp, mean, std, f_best, s)
                              for s in starts])
            order = np.argsort(-utils, kind="stable")
            out = engine._refine_gradient(acq, gp, starts[order], f_best,
                                          mean, std, utils[order])
            out_util = self._util(acq, gp, mean, std, f_best, out)
            assert out_util >= utils.max() - 1e-12


class TestRefitCache:
    def test_top_of_iteration_refit_reused(self, monkeypatch):
        # The cheap refit after an evaluation fits the exact data the next
        # iteration's surrogate needs; the engine must not refit it.
        fits = {"n": 0}
        real_fit = GaussianProcessRegressor.fit

        def counting_fit(self, X, y):
            fits["n"] += 1
            return real_fit(self, X, y)

        monkeypatch.setattr(GaussianProcessRegressor, "fit", counting_fit)
        space, objective, initial = make_problem(seed=9)
        budget = 8
        engine = BOEngine(rng=10, n_candidates=64, hyperopt_every=5)
        engine.minimize(objective, space, initial, budget=budget)
        # Without the cache every iteration fits twice (nominate + gain
        # update).  With it, off-schedule iterations reuse the previous
        # cheap refit, leaving one fit per iteration plus the scheduled
        # full fits (2 here: iterations 0 and 5).
        assert fits["n"] == budget + 2

    def test_cache_never_reused_after_hyperopt(self):
        # A scheduled full fit re-optimizes theta, so the cached factor
        # from the previous cheap refit must not short-circuit it.
        space, objective, initial = make_problem(seed=11)
        engine = BOEngine(rng=12, n_candidates=64, hyperopt_every=2)
        engine.minimize(objective, space, initial, budget=6)
        assert engine._theta is not None  # full fits happened on schedule
