"""Tests for the asynchronous BO engine (``async_workers=k``).

The contract under test (docs/PERFORMANCE.md):

* ``async_workers=1`` is the degenerate case — never more than one point
  in flight, objective called directly on the serial pool backend — and
  must reproduce the synchronous engine's decision sequence bit-for-bit.
* ``k > 1`` keeps up to k evaluations in flight, folds completions
  immediately, and penalizes busy points out of the acquisition; results
  then depend on completion order, so only structural invariants hold.
* Objectives without class-level ``spawn_view()`` degrade to one worker
  with an audible warning and a ``batch.serial_fallback`` event/counter
  (they used to serialize silently).
"""

import warnings

import numpy as np
import pytest

from repro.core import BOEngine, MedianGuard
from repro.obs import InMemorySink, Tracer
from repro.sampling import latin_hypercube
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=6, seed=0, noise=0.01):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=min(3, dim),
                                   noise=noise, rng=seed)
    U = latin_hypercube(8, dim, rng=seed + 100)
    initial = [objective(u) for u in U]
    return space, objective, initial


def eval_sequence(evals):
    """Bit-exact fingerprint of a decision sequence."""
    return [(e.vector.tobytes(), float(e.objective)) for e in evals]


class TestSingleWorkerParity:
    def test_k1_matches_serial_engine_bitwise(self):
        runs = []
        for async_workers in (0, 1):
            space, objective, initial = make_problem(seed=1)
            engine = BOEngine(rng=0, n_candidates=64,
                              async_workers=async_workers)
            evals = engine.minimize(objective, space, initial, budget=14)
            runs.append((eval_sequence(evals),
                         [r.chosen_acquisition for r in engine.records]))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_k1_parity_with_guard(self):
        runs = []
        for async_workers in (0, 1):
            space, objective, initial = make_problem(seed=2)
            engine = BOEngine(rng=3, n_candidates=64, refine=False,
                              async_workers=async_workers)
            guard = MedianGuard()
            evals = engine.minimize(objective, space, initial, budget=10,
                                    guard=guard)
            runs.append(eval_sequence(evals))
        assert runs[0] == runs[1]

    def test_k1_parity_with_early_stop(self):
        runs = []
        for async_workers in (0, 1):
            space, objective, initial = make_problem(seed=4)
            engine = BOEngine(rng=5, n_candidates=64, refine=False,
                              early_stop_patience=3,
                              async_workers=async_workers)
            evals = engine.minimize(objective, space, initial, budget=40)
            runs.append(eval_sequence(evals))
        assert runs[0] == runs[1]
        assert len(runs[0]) < 40  # the patience actually fired


class TestMultiWorker:
    def test_respects_budget_and_records(self):
        space, objective, initial = make_problem(seed=6)
        engine = BOEngine(rng=7, n_candidates=64, refine=False,
                          async_workers=3)
        evals = engine.minimize(objective, space, initial, budget=11)
        assert len(evals) == 11
        assert len(engine.records) == 11
        assert objective.n_evaluations == len(initial) + 11
        assert [r.iteration for r in engine.records] == list(range(11))

    def test_improves_over_initial_design(self):
        space, objective, initial = make_problem(seed=8)
        engine = BOEngine(rng=9, n_candidates=128, async_workers=2)
        evals = engine.minimize(objective, space, initial, budget=25)
        assert min(e.objective for e in evals) < \
            min(e.objective for e in initial)

    def test_emits_dispatch_and_fold_events(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        space, objective, initial = make_problem(seed=10)
        engine = BOEngine(rng=11, n_candidates=64, refine=False,
                          async_workers=3, tracer=tracer)
        engine.minimize(objective, space, initial, budget=9)
        dispatches = [e for e in sink.events()
                      if e["type"] == "async.dispatch"]
        folds = [e for e in sink.events() if e["type"] == "async.fold"]
        assert len(dispatches) == 9
        assert len(folds) == 9
        # In-flight depth is bounded by k and reaches it at least once.
        depths = [e["data"]["in_flight"] for e in dispatches]
        assert max(depths) <= 3
        assert max(depths) > 1
        counters = tracer.counters
        assert counters["evals"] == 9
        assert counters["async.idle_worker_slots"] >= 1
        tracer.close()

    def test_early_stop_drains_in_flight(self):
        """Stopping issues no new work but still folds what's in flight."""
        space, objective, initial = make_problem(seed=12)
        engine = BOEngine(rng=13, n_candidates=64, refine=False,
                          early_stop_patience=2, async_workers=4)
        evals = engine.minimize(objective, space, initial, budget=60)
        assert 0 < len(evals) < 60
        assert len(engine.records) == len(evals)

    def test_zero_budget(self):
        space, objective, initial = make_problem(seed=14)
        engine = BOEngine(rng=15, async_workers=2)
        assert engine.minimize(objective, space, initial, budget=0) == []

    def test_requires_priors(self):
        space, objective, _ = make_problem(seed=16)
        engine = BOEngine(rng=17, async_workers=2)
        with pytest.raises(ValueError):
            engine.minimize(objective, space, [], budget=3)


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="async_workers"):
            BOEngine(async_workers=-1)

    def test_async_and_batch_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually"):
            BOEngine(async_workers=2, batch_size=2)

    def test_async_with_batch_one_is_fine(self):
        BOEngine(async_workers=2, batch_size=1)


class _PlainWrapper:
    """A wrapper objective that (deliberately) hides spawn_view.

    Stands in for journal/fault-injector wrappers: forwarding the inner
    objective's view would skip the wrapper's per-evaluation bookkeeping,
    so the engine must degrade to serial — audibly.
    """

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def __call__(self, u, threshold=None):
        self.calls += 1
        return self._inner(u, threshold)


class TestSerialFallback:
    def test_async_wrapper_objective_warns_and_counts(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        space, objective, initial = make_problem(seed=18)
        wrapped = _PlainWrapper(objective)
        engine = BOEngine(rng=19, n_candidates=64, refine=False,
                          async_workers=3, tracer=tracer)
        with pytest.warns(RuntimeWarning,
                          match="_PlainWrapper has no class-level "
                                "spawn_view"):
            evals = engine.minimize(wrapped, space, initial, budget=6)
        assert len(evals) == 6
        assert wrapped.calls == 6  # every evaluation went through the wrapper
        assert tracer.counters["batch.serial_fallback"] == 1
        events = [e for e in sink.events()
                  if e["type"] == "batch.serial_fallback"]
        assert len(events) == 1
        assert events[0]["data"]["objective"] == "_PlainWrapper"
        assert events[0]["data"]["points"] == 3
        tracer.close()

    def test_async_fallback_matches_k1_decisions(self):
        """Degrading k>1 to one worker lands on the k=1 sequence."""
        space, objective, initial = make_problem(seed=20)
        wrapped = _PlainWrapper(objective)
        engine = BOEngine(rng=21, n_candidates=64, refine=False,
                          async_workers=4)
        with pytest.warns(RuntimeWarning):
            got = engine.minimize(wrapped, space, initial, budget=8)

        space2, objective2, initial2 = make_problem(seed=20)
        ref_engine = BOEngine(rng=21, n_candidates=64, refine=False,
                              async_workers=1)
        want = ref_engine.minimize(objective2, space2, initial2, budget=8)
        assert eval_sequence(got) == eval_sequence(want)

    def test_batched_wrapper_objective_warns_and_counts(self):
        """The constant-liar rounds share the same audible fallback."""
        sink = InMemorySink()
        tracer = Tracer(sink)
        space, objective, initial = make_problem(seed=22)
        wrapped = _PlainWrapper(objective)
        engine = BOEngine(rng=23, n_candidates=64, refine=False,
                          batch_size=2, tracer=tracer)
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            evals = engine.minimize(wrapped, space, initial, budget=6)
        assert len(evals) == 6
        assert tracer.counters["batch.serial_fallback"] >= 1
        tracer.close()

    def test_warns_once_per_engine(self):
        space, objective, initial = make_problem(seed=24)
        wrapped = _PlainWrapper(objective)
        engine = BOEngine(rng=25, n_candidates=64, refine=False,
                          batch_size=2)
        with pytest.warns(RuntimeWarning):
            engine.minimize(wrapped, space, initial, budget=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.minimize(wrapped, space, initial, budget=4)

    def test_spawn_view_objective_does_not_warn(self):
        space, objective, initial = make_problem(seed=26)
        engine = BOEngine(rng=27, n_candidates=64, refine=False,
                          async_workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evals = engine.minimize(objective, space, initial, budget=6)
        assert len(evals) == 6
