"""Tests for the median-multiple bad-configuration guard."""

import pytest

from repro.core import MedianGuard


class TestThreshold:
    def test_static_limit_before_enough_observations(self):
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=5)
        for t in (10.0, 12.0):
            guard.observe(t, ok=True)
        assert guard.threshold_s() == 480.0

    def test_median_rule_after_enough_observations(self):
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=3)
        for t in (10.0, 20.0, 30.0):
            guard.observe(t, ok=True)
        assert guard.threshold_s() == pytest.approx(60.0)

    def test_never_exceeds_static_limit(self):
        guard = MedianGuard(3.0, static_limit_s=100.0, min_observations=2)
        for t in (90.0, 95.0):
            guard.observe(t, ok=True)
        assert guard.threshold_s() == 100.0

    def test_no_limits_at_all(self):
        guard = MedianGuard(3.0, static_limit_s=None, min_observations=3)
        assert guard.threshold_s() is None

    def test_failures_do_not_shape_median(self):
        guard = MedianGuard(3.0, static_limit_s=None, min_observations=2)
        guard.observe(10.0, ok=True)
        guard.observe(10.0, ok=True)
        guard.observe(480.0, ok=False)  # a killed run must not inflate it
        assert guard.threshold_s() == pytest.approx(30.0)

    def test_median_tracks_new_observations(self):
        guard = MedianGuard(2.0, static_limit_s=None, min_observations=1)
        guard.observe(10.0, ok=True)
        assert guard.threshold_s() == pytest.approx(20.0)
        guard.observe(100.0, ok=True)
        guard.observe(100.0, ok=True)
        assert guard.threshold_s() == pytest.approx(200.0)


class TestActivationBoundary:
    """The median rule switches on at exactly min_observations successes."""

    def test_one_below_threshold_still_static(self):
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=4)
        for t in (10.0, 10.0, 10.0):
            guard.observe(t, ok=True)
        assert guard.threshold_s() == 480.0

    def test_exactly_at_threshold_activates(self):
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=4)
        for t in (10.0, 10.0, 10.0, 10.0):
            guard.observe(t, ok=True)
        assert guard.threshold_s() == pytest.approx(30.0)

    def test_failures_do_not_count_toward_activation(self):
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=2)
        guard.observe(10.0, ok=True)
        for _ in range(5):
            guard.observe(480.0, ok=False)
        # One success: still below min_observations, static limit holds.
        assert guard.threshold_s() == 480.0
        guard.observe(10.0, ok=True)
        assert guard.threshold_s() == pytest.approx(30.0)

    def test_median_rule_clamped_from_activation_onwards(self):
        guard = MedianGuard(10.0, static_limit_s=50.0, min_observations=1)
        guard.observe(10.0, ok=True)
        # 10x median = 100 s would exceed the cap: clamped immediately.
        assert guard.threshold_s() == 50.0


class TestValidation:
    def test_multiplier_must_exceed_one(self):
        with pytest.raises(ValueError):
            MedianGuard(1.0)

    def test_min_observations_positive(self):
        with pytest.raises(ValueError):
            MedianGuard(2.0, min_observations=0)
