"""Tests for cross-workload mapping (the OtterTune-style extension)."""

import numpy as np
import pytest

from repro.core import WorkloadMapper
from repro.space import spark_space
from repro.tuners import WorkloadObjective
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def space():
    return spark_space()


def objective(name, dataset="D1", seed=0, space=None):
    return WorkloadObjective(get_workload(name, dataset), space, rng=seed)


class TestSignatures:
    def test_probe_design_is_stable(self, space):
        a = WorkloadMapper(space, n_probes=8)
        b = WorkloadMapper(space, n_probes=8)
        np.testing.assert_array_equal(a.probes, b.probes)

    def test_signature_shape_and_cost(self, space):
        mapper = WorkloadMapper(space, n_probes=8)
        sig, cost = mapper.signature(objective("terasort", space=space))
        assert sig.shape == (8,)
        assert cost > 0

    def test_register_validation(self, space):
        mapper = WorkloadMapper(space, n_probes=8)
        with pytest.raises(ValueError):
            mapper.register("x", np.zeros(5), ["p"])
        with pytest.raises(ValueError):
            mapper.register("x", np.zeros(8), [])


class TestMapping:
    def test_same_workload_different_dataset_matches(self, space):
        mapper = WorkloadMapper(space, n_probes=10, threshold=0.7)
        sig, _ = mapper.signature(objective("pagerank", "D1", seed=1,
                                            space=space))
        mapper.register("pagerank", sig, ["spark.executor.cores"])
        result = mapper.map(objective("pagerank", "D3", seed=2, space=space))
        assert result.matched == "pagerank"
        assert result.correlation >= 0.7
        assert mapper.selected_for("pagerank") == ["spark.executor.cores"]

    def test_similar_family_matches(self, space):
        """CC behaves like PR (both cached-graph iterative shuffles)."""
        mapper = WorkloadMapper(space, n_probes=10, threshold=0.7)
        sig, _ = mapper.signature(objective("pagerank", "D1", seed=3,
                                            space=space))
        mapper.register("pagerank", sig, ["spark.executor.cores"])
        result = mapper.map(objective("connectedcomponents", "D1", seed=4,
                                      space=space))
        assert result.matched == "pagerank"

    def test_no_registered_workloads_returns_none(self, space):
        mapper = WorkloadMapper(space, n_probes=8)
        result = mapper.map(objective("kmeans", space=space, seed=5))
        assert result.matched is None
        assert result.probe_cost_s > 0

    def test_threshold_blocks_weak_matches(self, space):
        mapper = WorkloadMapper(space, n_probes=10, threshold=0.999)
        sig, _ = mapper.signature(objective("terasort", "D1", seed=6,
                                            space=space))
        mapper.register("terasort", sig, ["spark.default.parallelism"])
        result = mapper.map(objective("kmeans", "D1", seed=7, space=space))
        # With an extreme threshold, even plausible matches are rejected.
        assert result.matched is None

    def test_validation(self, space):
        with pytest.raises(ValueError):
            WorkloadMapper(space, n_probes=2)
        with pytest.raises(ValueError):
            WorkloadMapper(space, threshold=0.0)
