"""Tests for the BO engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import BOEngine, GPHedge, LowerConfidenceBound, MedianGuard
from repro.sampling import latin_hypercube
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=4, seed=0, noise=0.01):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=min(3, dim),
                                   noise=noise, rng=seed)
    U = latin_hypercube(8, dim, rng=seed)
    initial = [objective(u) for u in U]
    return space, objective, initial


class TestMinimize:
    def test_improves_over_initial_design(self):
        space, objective, initial = make_problem(seed=1)
        engine = BOEngine(rng=2, n_candidates=128)
        evals = engine.minimize(objective, space, initial, budget=25)
        best_init = min(e.objective for e in initial)
        best_bo = min(e.objective for e in evals)
        assert best_bo < best_init

    def test_approaches_known_optimum(self):
        space, objective, initial = make_problem(seed=3)
        engine = BOEngine(rng=4, n_candidates=256)
        evals = engine.minimize(objective, space, initial, budget=40)
        best = min(evals, key=lambda e: e.objective)
        # True optimum value is base=10; noise-free bowl is steep.
        assert best.objective < 15.0

    def test_respects_budget(self):
        space, objective, initial = make_problem(seed=5)
        engine = BOEngine(rng=6, n_candidates=64, refine=False)
        evals = engine.minimize(objective, space, initial, budget=7)
        assert len(evals) == 7
        assert objective.n_evaluations == len(initial) + 7

    def test_zero_budget(self):
        space, objective, initial = make_problem(seed=7)
        engine = BOEngine(rng=8)
        assert engine.minimize(objective, space, initial, budget=0) == []

    def test_requires_priors(self):
        space, objective, _ = make_problem(seed=9)
        engine = BOEngine(rng=10)
        with pytest.raises(ValueError):
            engine.minimize(objective, space, [], budget=3)

    def test_records_per_iteration(self):
        space, objective, initial = make_problem(seed=11)
        engine = BOEngine(rng=12, n_candidates=64, refine=False)
        engine.minimize(objective, space, initial, budget=5)
        assert len(engine.records) == 5
        for i, rec in enumerate(engine.records):
            assert rec.iteration == i
            assert rec.chosen_acquisition in ("PI", "EI", "LCB")
            assert rec.point.shape == (space.dim,)
            np.testing.assert_allclose(rec.probabilities.sum(), 1.0)

    def test_early_stopping(self):
        space, objective, initial = make_problem(seed=13)
        engine = BOEngine(rng=14, n_candidates=64, refine=False,
                          early_stop_patience=3)
        evals = engine.minimize(objective, space, initial, budget=50)
        assert len(evals) < 50

    def test_custom_portfolio(self):
        space, objective, initial = make_problem(seed=15)
        engine = BOEngine(rng=16, n_candidates=64, refine=False,
                          hedge=GPHedge([LowerConfidenceBound()], rng=16))
        engine.minimize(objective, space, initial, budget=4)
        assert all(r.chosen_acquisition == "LCB" for r in engine.records)

    def test_guard_receives_initial_and_new_observations(self):
        space, objective, initial = make_problem(seed=17)
        guard = MedianGuard(3.0, static_limit_s=480.0, min_observations=2)
        engine = BOEngine(rng=18, n_candidates=64, refine=False)
        engine.minimize(objective, space, initial, budget=3, guard=guard)
        assert guard.threshold_s() is not None
        assert guard.threshold_s() < 480.0

    def test_points_snapped_to_space(self):
        space, objective, initial = make_problem(seed=19)
        engine = BOEngine(rng=20, n_candidates=64, refine=False)
        evals = engine.minimize(objective, space, initial, budget=4)
        for e in evals:
            np.testing.assert_allclose(e.vector, space.snap(e.vector),
                                       atol=1e-12)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            BOEngine(n_candidates=2)
        with pytest.raises(ValueError):
            BOEngine(hyperopt_every=0)
        space, objective, initial = make_problem()
        with pytest.raises(ValueError):
            BOEngine(rng=0).minimize(objective, space, initial, budget=-1)
