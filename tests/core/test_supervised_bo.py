"""BOEngine supervised execution: censored synthesis, quarantine, and
engine-level routing (docs/ROBUSTNESS.md)."""

import warnings

import numpy as np
import pytest

from repro.core import BOEngine
from repro.faults import HangInjector, HangPlan
from repro.obs import InMemorySink, Tracer
from repro.sampling import latin_hypercube
from repro.sparksim.result import RunStatus
from repro.supervise import SupervisePolicy
from repro.supervise.quarantine import vector_key
from repro.tuners import SyntheticObjective, synthetic_space


def make_problem(dim=4, seed=0, n_initial=8):
    space = synthetic_space(dim)
    objective = SyntheticObjective(space, n_effective=3, noise=0.01,
                                   rng=seed)
    initial = [objective(u) for u in latin_hypercube(n_initial, dim,
                                                     rng=seed)]
    return space, objective, initial


class TestValidation:
    def test_supervise_requires_async_workers(self):
        with pytest.raises(ValueError, match="async_workers"):
            BOEngine(supervise=SupervisePolicy())

    def test_supervise_type_checked(self):
        with pytest.raises(TypeError, match="SupervisePolicy"):
            BOEngine(async_workers=1, supervise={"eval_timeout_s": 1.0})


class TestFaultFreeSupervision:
    def test_completes_budget(self):
        space, objective, initial = make_problem(seed=1)
        engine = BOEngine(rng=2, n_candidates=64, async_workers=2,
                          supervise=SupervisePolicy(eval_timeout_s=30.0))
        evals = engine.minimize(objective, space, initial, budget=10)
        assert len(evals) == 10
        assert all(e.fault is None for e in evals)
        assert engine.quarantined == []

    def test_single_worker_supervised(self):
        space, objective, initial = make_problem(seed=3)
        engine = BOEngine(rng=4, n_candidates=64, async_workers=1,
                          supervise=SupervisePolicy(eval_timeout_s=30.0))
        evals = engine.minimize(objective, space, initial, budget=6)
        assert len(evals) == 6

    def test_early_stop_respected(self):
        space, objective, initial = make_problem(seed=5)
        engine = BOEngine(rng=6, n_candidates=64, async_workers=2,
                          early_stop_patience=2,
                          supervise=SupervisePolicy(eval_timeout_s=30.0))
        evals = engine.minimize(objective, space, initial, budget=40)
        assert len(evals) < 40

    def test_non_spawnable_objective_degrades_audibly(self):
        space, objective, initial = make_problem(seed=7)

        class _PlainWrapper:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def __call__(self, u, time_limit_s=None):
                return self._inner(u, time_limit_s)

        engine = BOEngine(rng=8, n_candidates=64, async_workers=3,
                          supervise=SupervisePolicy(eval_timeout_s=30.0,
                                                    speculate=True))
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            evals = engine.minimize(_PlainWrapper(objective), space,
                                    initial, budget=6)
        assert len(evals) == 6


class TestDeadlinesAndQuarantine:
    def test_hung_evaluations_are_censored(self):
        space, objective, initial = make_problem(seed=9)
        # Every evaluation hangs far past the 0.2s hard deadline.
        inj = HangInjector(objective, HangPlan(1.0, seed=1, hang_s=30.0,
                                               death_share=0.0))
        sink = InMemorySink()
        tracer = Tracer([sink])
        engine = BOEngine(rng=10, n_candidates=64, async_workers=2,
                          supervise=SupervisePolicy(eval_timeout_s=0.2,
                                                    quarantine_after=99),
                          tracer=tracer)
        evals = engine.minimize(inj, space, initial, budget=4)
        assert len(evals) == 4
        assert all(e.fault == "deadline" for e in evals)
        assert all(e.status is RunStatus.TIMEOUT for e in evals)
        assert all(e.truncated and e.transient for e in evals)
        # Censored at the objective's full cap, charged to search cost.
        assert all(e.cost_s == pytest.approx(inj.time_limit_s)
                   for e in evals)
        assert tracer.counters["supervise.deadline_hit"] == 4

    def test_worker_deaths_are_censored_after_redispatch(self):
        space, objective, initial = make_problem(seed=11)
        inj = HangInjector(objective, HangPlan(1.0, seed=2,
                                               death_share=1.0))
        sink = InMemorySink()
        tracer = Tracer([sink])
        engine = BOEngine(rng=12, n_candidates=64, async_workers=2,
                          supervise=SupervisePolicy(eval_timeout_s=30.0,
                                                    quarantine_after=99,
                                                    max_redispatch=1),
                          tracer=tracer)
        evals = engine.minimize(inj, space, initial, budget=4)
        assert len(evals) == 4
        assert all(e.fault == "worker_death" for e in evals)
        assert all(e.status is RunStatus.RUNTIME_ERROR for e in evals)
        # Each task got one reclaim-and-redispatch before giving up.
        assert tracer.counters["supervise.reclaim"] == 4

    def test_poison_config_quarantined_and_not_reproposed(self):
        space, objective, initial = make_problem(seed=13)
        poisoned = []

        def poison(u):
            # Poison whatever the engine proposes first; remember it.
            if not poisoned:
                poisoned.append(u.copy())
            return bool(np.array_equal(u, poisoned[0]))

        inj = HangInjector(objective, HangPlan(0.0), poison=poison,
                           poison_kind="worker_death")
        engine = BOEngine(rng=14, n_candidates=64, async_workers=1,
                          supervise=SupervisePolicy(eval_timeout_s=30.0,
                                                    quarantine_after=1,
                                                    max_redispatch=0))
        evals = engine.minimize(inj, space, initial, budget=8)
        assert len(evals) == 8
        assert len(engine.quarantined) == 1
        assert np.array_equal(engine.quarantined[0], poisoned[0])
        # The poison vector was never proposed again after quarantine.
        key = vector_key(poisoned[0])
        later = [e for e in evals[1:]]
        assert all(vector_key(e.vector) != key for e in later)
        # Exactly one evaluation was charged to the poison config.
        assert sum(e.fault == "worker_death" for e in evals) == 1

    def test_censor_value_hook_preferred(self):
        space, objective, initial = make_problem(seed=15)

        class _Censoring(SyntheticObjective):
            def censor_value(self, config, limit_s):
                assert limit_s is None  # full-cap censoring
                return 1234.5

        censoring = _Censoring(space, n_effective=3, noise=0.01, rng=15)
        inj = HangInjector(censoring, HangPlan(1.0, seed=3,
                                               death_share=1.0))
        engine = BOEngine(rng=16, n_candidates=64, async_workers=1,
                          supervise=SupervisePolicy(eval_timeout_s=30.0,
                                                    quarantine_after=99,
                                                    max_redispatch=0))
        evals = engine.minimize(inj, space, initial, budget=2)
        assert all(e.objective == 1234.5 for e in evals)


class TestChaoticMix:
    def test_mixed_faults_complete_budget(self):
        space, objective, initial = make_problem(seed=17)
        inj = HangInjector(objective, HangPlan(0.4, seed=4, hang_s=0.5,
                                               death_share=0.5))
        sink = InMemorySink()
        tracer = Tracer([sink])
        engine = BOEngine(rng=18, n_candidates=64, async_workers=3,
                          supervise=SupervisePolicy(eval_timeout_s=0.2,
                                                    speculate=True,
                                                    quarantine_after=2),
                          tracer=tracer)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            evals = engine.minimize(inj, space, initial, budget=12)
        assert len(evals) == 12
        # The session made progress despite the chaos: at least one
        # clean evaluation landed.
        assert any(e.fault is None for e in evals)
