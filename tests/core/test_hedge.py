"""Tests for the GP-Hedge portfolio."""

import numpy as np
import pytest

from repro.core import (ExpectedImprovement, GPHedge, LowerConfidenceBound,
                        ProbabilityOfImprovement)


class TestPortfolio:
    def test_default_portfolio_is_pi_ei_lcb(self):
        hedge = GPHedge(rng=0)
        assert hedge.names == ["PI", "EI", "LCB"]

    def test_initial_probabilities_uniform(self):
        hedge = GPHedge(rng=0)
        np.testing.assert_allclose(hedge.probabilities(), 1 / 3)

    def test_probabilities_sum_to_one_always(self):
        hedge = GPHedge(rng=0)
        hedge.update(np.array([100.0, -50.0, 3.0]))
        p = hedge.probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_rewarded_function_gains_probability(self):
        hedge = GPHedge(rng=0)
        for _ in range(5):
            hedge.update(np.array([1.0, 0.0, 0.0]))
        p = hedge.probabilities()
        assert p[0] > 0.8
        assert np.argmax(p) == 0

    def test_extreme_gains_numerically_stable(self):
        hedge = GPHedge(rng=0)
        hedge.update(np.array([1e6, 0.0, -1e6]))
        p = hedge.probabilities()
        assert np.isfinite(p).all()
        assert p.sum() == pytest.approx(1.0)


class TestChoose:
    def test_choice_respects_distribution(self):
        hedge = GPHedge(rng=1)
        hedge.update(np.array([50.0, 0.0, 0.0]))
        nominees = np.arange(6.0).reshape(3, 2)
        picks = [hedge.choose(nominees).chosen_index for _ in range(50)]
        assert np.mean(np.array(picks) == 0) > 0.9

    def test_choice_records_nominees(self):
        hedge = GPHedge(rng=2)
        nominees = np.random.default_rng(0).random((3, 4))
        choice = hedge.choose(nominees)
        np.testing.assert_array_equal(choice.nominees, nominees)
        assert choice.chosen_name == hedge.names[choice.chosen_index]

    def test_wrong_nominee_count_rejected(self):
        hedge = GPHedge(rng=0)
        with pytest.raises(ValueError):
            hedge.choose(np.zeros((2, 4)))

    def test_wrong_reward_shape_rejected(self):
        hedge = GPHedge(rng=0)
        with pytest.raises(ValueError):
            hedge.update(np.zeros(2))


class TestCustomPortfolio:
    def test_single_function_portfolio(self):
        hedge = GPHedge([ExpectedImprovement()], rng=0)
        choice = hedge.choose(np.zeros((1, 3)))
        assert choice.chosen_index == 0
        assert choice.chosen_name == "EI"

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            GPHedge([])

    def test_eta_validation(self):
        with pytest.raises(ValueError):
            GPHedge(eta=0.0)

    def test_eta_sharpens_distribution(self):
        soft = GPHedge(eta=0.1, rng=0)
        sharp = GPHedge(eta=5.0, rng=0)
        for h in (soft, sharp):
            h.update(np.array([1.0, 0.0, 0.0]))
        assert sharp.probabilities()[0] > soft.probabilities()[0]
