"""Tests for the full ROBOTune orchestrator."""

import numpy as np
import pytest

from repro.core import (ConfigMemoizationBuffer, ParameterSelectionCache,
                        ParameterSelector, ROBOTune)
from repro.tuners import SyntheticObjective, synthetic_space


def make_tuner(cache=None, memo=None, seed=0, **kw):
    defaults = dict(
        selector=ParameterSelector(n_samples=40, n_trees=40, n_repeats=3,
                                   rng=seed),
        selection_cache=cache, memo_buffer=memo, rng=seed,
        engine_kwargs={"n_candidates": 64, "refine": False},
    )
    defaults.update(kw)
    return ROBOTune(**defaults)


def make_objective(seed=0, dim=10, name="synth", dataset="D1"):
    return SyntheticObjective(synthetic_space(dim), n_effective=3, rng=seed,
                              name=name, dataset=dataset)


class TestColdSession:
    def test_full_pipeline(self):
        tuner = make_tuner(seed=1)
        result = tuner.tune(make_objective(seed=2), budget=40, rng=3)
        assert result.tuner == "ROBOTune"
        assert result.n_evaluations == 40
        assert not result.selection_cache_hit
        assert result.selection is not None
        assert result.selection_cost_s > 0
        assert result.selected_parameters
        assert result.reduced_space is not None
        assert result.reduced_space.dim <= 10
        assert result.best_time_s < 100.0

    def test_selection_cost_excluded_from_search_cost(self):
        tuner = make_tuner(seed=4)
        result = tuner.tune(make_objective(seed=5), budget=30, rng=6)
        eval_cost = sum(e.cost_s for e in result.evaluations)
        assert result.search_cost_s == pytest.approx(eval_cost)

    def test_initial_design_size(self):
        tuner = make_tuner(seed=7, init_samples=12)
        result = tuner.tune(make_objective(seed=8), budget=30, rng=9)
        assert len(result.bo_records) == 30 - 12

    def test_budget_smaller_than_init(self):
        tuner = make_tuner(seed=10)
        result = tuner.tune(make_objective(seed=11), budget=5, rng=12)
        assert result.n_evaluations == 5
        assert result.bo_records == []

    def test_beats_pure_initial_design(self):
        tuner = make_tuner(seed=13)
        result = tuner.tune(make_objective(seed=14), budget=50, rng=15)
        init_best = min(e.objective for e in result.evaluations[:20])
        assert result.best_time_s <= init_best


class TestMemoizedSession:
    def test_cache_hit_skips_selection(self):
        cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
        tuner = make_tuner(cache, memo, seed=16)
        obj = make_objective(seed=17)
        first = tuner.tune(obj, budget=30, rng=18)
        before = obj.n_evaluations
        second = tuner.tune(make_objective(seed=19), budget=30, rng=20)
        assert not first.selection_cache_hit
        assert second.selection_cache_hit
        assert second.selection_cost_s == 0.0
        assert second.selected_parameters == first.selected_parameters

    def test_memoized_configs_seed_initial_design(self):
        cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
        tuner = make_tuner(cache, memo, seed=21)
        first = tuner.tune(make_objective(seed=22), budget=30, rng=23)
        stored = memo.best("synth", 10)
        assert len(stored) == 4
        assert stored[0].objective == pytest.approx(first.best_time_s)
        # Warm session on a "new dataset" pulls them into the design.
        second = tuner.tune(make_objective(seed=24, dataset="D2"),
                            budget=30, rng=25)
        assert second.memoized_used == 4
        # The first few evaluations re-run memoized configs: near-optimal.
        early = min(e.objective for e in second.evaluations[:4])
        assert early <= first.best_time_s * 1.5

    def test_anonymous_objective_skips_caches(self):
        cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
        tuner = make_tuner(cache, memo, seed=26)
        obj = SyntheticObjective(synthetic_space(10), n_effective=3, rng=27)
        result = tuner.tune(obj, budget=25, rng=28)
        assert not result.selection_cache_hit
        assert len(cache) == 0
        assert len(memo) == 0

    def test_zero_memo_configs_disables_reuse(self):
        tuner = make_tuner(seed=24, memo_configs=0)
        result = tuner.tune(make_objective(seed=25), budget=25, rng=26)
        assert result.memoized_used == 0


class TestValidation:
    def test_bad_budget(self):
        with pytest.raises(ValueError):
            make_tuner().tune(make_objective(), budget=0)

    def test_bad_init_samples(self):
        with pytest.raises(ValueError):
            ROBOTune(init_samples=1)

    def test_bad_memo_configs(self):
        with pytest.raises(ValueError):
            ROBOTune(init_samples=10, memo_configs=11)

    def test_objective_must_support_with_space(self):
        inner = SyntheticObjective(synthetic_space(4), n_effective=2, rng=0)

        class Bare:
            """Evaluable, but cannot be re-bound to a reduced space."""

            space = inner.space
            time_limit_s = inner.time_limit_s

            def __call__(self, u, t=None):
                return inner(u, t)

        tuner = make_tuner(seed=0, selector=ParameterSelector(
            n_samples=12, n_trees=10, n_repeats=2, rng=0))
        with pytest.raises(TypeError):
            tuner.tune(Bare(), budget=15, rng=1)


class TestSupervision:
    def test_supervise_requires_async_workers(self):
        from repro.supervise import SupervisePolicy
        with pytest.raises(ValueError, match="async_workers"):
            make_tuner(supervise=SupervisePolicy())

    def test_supervised_session_completes(self):
        from repro.supervise import SupervisePolicy
        tuner = make_tuner(seed=21, async_workers=2, init_samples=6,
                           supervise=SupervisePolicy(eval_timeout_s=30.0))
        result = tuner.tune(make_objective(seed=22), budget=14, rng=23)
        assert result.n_evaluations == 14
        assert result.quarantined_configs == []

    def test_quarantined_configs_reported_and_blocked(self):
        from repro.faults import HangInjector, HangPlan
        from repro.supervise import SupervisePolicy
        memo = ConfigMemoizationBuffer()
        full_dim = 10
        state = {"seen": 0, "target": None}

        def poison(u):
            # Poison the first *BO-phase* proposal: selection runs in the
            # full space, the 6 initial-design points come first in the
            # reduced one, and everything after that is a BO proposal.
            if len(u) == full_dim:
                return False
            state["seen"] += 1
            if state["seen"] <= 6:
                return False
            if state["target"] is None:
                state["target"] = np.asarray(u, dtype=float).copy()
            return bool(np.array_equal(u, state["target"]))

        objective = HangInjector(make_objective(seed=24, dim=full_dim),
                                 HangPlan(0.0), poison=poison,
                                 poison_kind="worker_death")
        tuner = make_tuner(memo=memo, seed=25, init_samples=6,
                           async_workers=1,
                           supervise=SupervisePolicy(eval_timeout_s=30.0,
                                                     quarantine_after=1,
                                                     max_redispatch=0))
        result = tuner.tune(objective, budget=12, rng=26)
        assert result.n_evaluations == 12
        assert len(result.quarantined_configs) == 1
        # The poison config must never warm-start a future session.
        key = objective.workload.key
        assert memo.is_blocked(key, result.quarantined_configs[0])
        memo.add(key, result.quarantined_configs[0], 1.0)  # refused
        assert all(m.config != result.quarantined_configs[0]
                   for m in memo.best(key, 100))


class TestAsyncWorkers:
    def test_async_forwarded_to_engine(self):
        tuner = make_tuner(seed=20, async_workers=3)
        result = tuner.tune(make_objective(seed=21), budget=25, rng=22)
        assert len(result.evaluations) == 25

    def test_async_single_worker_matches_sync(self):
        a = make_tuner(seed=23).tune(make_objective(seed=24), budget=25,
                                     rng=25)
        b = make_tuner(seed=23, async_workers=1).tune(
            make_objective(seed=24), budget=25, rng=25)
        assert [e.objective for e in a.evaluations] == \
            [e.objective for e in b.evaluations]

    def test_negative_async_workers_rejected(self):
        with pytest.raises(ValueError):
            ROBOTune(async_workers=-1)


class TestWarmStartSession:
    def test_constructor_fails_fast_on_bad_directory(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            make_tuner(seed=30, warm_start=str(tmp_path / "nope"))
        with pytest.raises(ValueError, match="no.*journal"):
            make_tuner(seed=30, warm_start=str(tmp_path))

    def test_prior_journal_folds_into_surrogate(self, tmp_path):
        prior = tmp_path / "prior"
        prior.mkdir()
        cold = make_tuner(seed=31)
        cold.checkpoint(make_objective(seed=32), budget=30,
                        journal=prior / "s0.jsonl", rng=33)
        warm = make_tuner(seed=31, warm_start=str(prior))
        result = warm.tune(make_objective(seed=32), budget=30, rng=34)
        assert result.warm_start_n > 0
        assert len(result.warm_start_sources) == 1
        assert result.n_evaluations == 30      # priors consume no budget

    def test_cold_by_default(self):
        result = make_tuner(seed=35).tune(make_objective(seed=36),
                                          budget=25, rng=37)
        assert result.warm_start_n == 0
        assert result.warm_start_sources == ()


class TestMappedSession:
    def _mapper(self, dim=10):
        from repro.core import WorkloadMapper
        from repro.tuners import synthetic_space
        return WorkloadMapper(synthetic_space(dim), n_probes=6,
                              threshold=0.8)

    def test_match_skips_selection_and_charges_probe_cost(self):
        mapper = self._mapper()
        cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
        first = make_tuner(cache, memo, seed=40, mapper=mapper)
        res_a = first.tune(make_objective(seed=41, name="alpha"),
                           budget=25, rng=42)
        assert res_a.mapped_from is None
        assert res_a.mapping_cost_s > 0        # probed, found nothing
        assert "alpha" in mapper.known_workloads

        second = make_tuner(cache, memo, seed=43, mapper=mapper)
        # Same bowl, different name: the probe signature rank-matches.
        res_b = second.tune(make_objective(seed=41, name="beta"),
                            budget=25, rng=44)
        assert res_b.mapped_from == "alpha"
        assert res_b.selection is None          # selection run skipped
        assert res_b.selected_parameters == res_a.selected_parameters
        assert res_b.mapping_cost_s > 0
        eval_cost = sum(e.cost_s for e in res_b.evaluations)
        assert res_b.search_cost_s == pytest.approx(
            eval_cost + res_b.mapping_cost_s)

    def test_cache_hit_skips_probing(self):
        mapper = self._mapper()
        cache, memo = ParameterSelectionCache(), ConfigMemoizationBuffer()
        tuner = make_tuner(cache, memo, seed=45, mapper=mapper)
        obj = make_objective(seed=46, name="gamma")
        tuner.tune(obj, budget=25, rng=47)
        again = make_tuner(cache, memo, seed=48, mapper=mapper)
        res = again.tune(obj, budget=25, rng=49)
        assert res.selection_cache_hit
        assert res.mapping_cost_s == 0.0        # no probe on a cache hit
