#!/usr/bin/env python
"""Memoized retuning: tune a workload across its three dataset sizes.

Demonstrates the paper's Memoized Sampling (§3.2 / Figure 6): the first
session pays for parameter selection; later sessions on new datasets of
the same workload hit the parameter-selection cache and seed the BO
training set with the best recent configurations, converging far faster.

The knowledge stores persist to JSON files, so re-running this script
resumes with everything warm — exactly how a long-lived tuning service
would behave.

Run:
    python examples/retune_new_dataset.py [--workload pagerank]
"""

import argparse
import tempfile
from pathlib import Path

from repro import (ConfigMemoizationBuffer, ParameterSelectionCache,
                   ROBOTune, WorkloadObjective, get_workload, spark_space)
from repro.bench import format_table, iterations_to_within


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="pagerank")
    parser.add_argument("--budget", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--store-dir", default=None,
                        help="directory for the JSON knowledge stores "
                             "(default: a fresh temp dir = cold start)")
    args = parser.parse_args()

    store_dir = Path(args.store_dir or tempfile.mkdtemp(prefix="robotune-"))
    store_dir.mkdir(parents=True, exist_ok=True)
    cache = ParameterSelectionCache(store_dir / "selection_cache.json")
    memo = ConfigMemoizationBuffer(store_dir / "memo_buffer.json")
    print(f"Knowledge stores: {store_dir}")

    space = spark_space()
    tuner = ROBOTune(selection_cache=cache, memo_buffer=memo, rng=args.seed)

    rows = []
    for i, dataset in enumerate(("D1", "D2", "D3")):
        workload = get_workload(args.workload, dataset)
        objective = WorkloadObjective(workload, space,
                                      rng=args.seed * 100 + i)
        result = tuner.tune(objective, args.budget, rng=args.seed * 10 + i)
        within10 = iterations_to_within(result.best_curve(), 0.10)
        rows.append((
            dataset,
            "hit" if result.selection_cache_hit else "miss",
            result.memoized_used,
            result.best_time_s,
            within10 if within10 is not None else "-",
            result.search_cost_s / 60,
        ))
        print(f"{workload.full_key}: best {result.best_time_s:.1f}s, "
              f"within-10% after {within10} iterations")

    print()
    print(format_table(
        ["Dataset", "selection cache", "memo configs used", "best (s)",
         "iters to within 10%", "search cost (min)"],
        rows, title=f"Memoized retuning of {args.workload} across datasets"))
    print("\nThe D2/D3 sessions skip parameter selection entirely and "
          "start from remembered configurations.")


if __name__ == "__main__":
    main()
