#!/usr/bin/env python
"""Bring your own workload: model a custom Spark application and tune it.

ROBOTune tunes any black box; this example shows the intended extension
path for the simulator substrate: subclass
:class:`repro.workloads.Workload`, describe the application as a stage
DAG (here, a two-pass log-analytics job: parse + sessionize shuffle +
cached aggregation), and hand it to the standard objective.

Run:
    python examples/custom_workload.py [--budget 60]
"""

import argparse

from repro import ROBOTune, WorkloadObjective, spark_space
from repro.sparksim import CachedRDD, CacheLevel, InputSource, StageSpec
from repro.workloads import Dataset, Workload


class LogAnalytics(Workload):
    """Sessionization over web logs: parse, shuffle by user, aggregate.

    ``scale`` is the raw log volume in GB.
    """

    name = "loganalytics"
    abbrev = "LA"

    @property
    def input_mb(self) -> float:
        return self.dataset.scale * 1024.0

    def build_stages(self) -> list[StageSpec]:
        input_mb = self.input_mb
        sessions_mb = input_mb * 0.4   # sessionized data is denser
        sessions = CachedRDD(
            name="sessions",
            logical_mb=sessions_mb,
            level=CacheLevel.MEMORY_SER,
            expansion=2.2,
            rebuild_io_mb_per_mb=input_mb / sessions_mb,
            rebuild_cpu_s_per_mb=0.01,
        )
        return [
            StageSpec(name="parse-logs", input_mb=input_mb,
                      compute_s_per_mb=0.006, shuffle_write_ratio=0.5,
                      expansion=2.0),
            StageSpec(name="sessionize", input_mb=input_mb * 0.5,
                      input_source=InputSource.SHUFFLE,
                      compute_s_per_mb=0.008, shuffle_agg=True,
                      expansion=2.2, cache_output=sessions),
            StageSpec(name="top-k-report", input_mb=sessions_mb,
                      input_source=InputSource.CACHE, reads_cached="sessions",
                      compute_s_per_mb=0.004, expansion=2.0,
                      driver_collect_mb=5.0),
            StageSpec(name="daily-rollup", input_mb=sessions_mb,
                      input_source=InputSource.CACHE, reads_cached="sessions",
                      compute_s_per_mb=0.005, shuffle_write_ratio=0.1,
                      shuffle_agg=True, expansion=2.0,
                      output_mb=sessions_mb * 0.05),
        ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gb", type=float, default=25.0,
                        help="log volume in GB")
    parser.add_argument("--budget", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = LogAnalytics(Dataset("custom", args.gb))
    space = spark_space()
    objective = WorkloadObjective(workload, space, rng=args.seed)

    print(f"Tuning custom workload {workload.full_key} "
          f"({args.gb:.0f} GB of logs)...")
    result = ROBOTune(rng=args.seed).tune(objective, args.budget,
                                          rng=args.seed)
    print(f"Selected parameters: {result.selected_parameters}")
    print(f"Best execution time: {result.best_time_s:.1f} s "
          f"(search cost {result.search_cost_s / 60:.0f} min)")
    interesting = sorted(set(result.selected_parameters))
    print("Best values:")
    for name in interesting:
        print(f"  {name} = {result.best_config[name]}")


if __name__ == "__main__":
    main()
