#!/usr/bin/env python
"""Cross-workload transfer: skip parameter selection for look-alike apps.

ROBOTune's parameter-selection cache is keyed by exact workload identity,
so a brand-new application always pays the ~100-sample selection cost.
This example demonstrates the :class:`repro.core.WorkloadMapper`
extension: characterize workloads by their execution-time signature on a
tiny shared probe set; when a new workload rank-correlates strongly with a
known one (here: ConnectedComponents vs the already-tuned PageRank — both
cached-graph iterative shuffles), reuse its selected parameters and go
straight to Bayesian optimization.

Run:
    python examples/transfer_tuning.py [--budget 60]
"""

import argparse

from repro import (ParameterSelectionCache, ROBOTune, WorkloadObjective,
                   get_workload, spark_space)
from repro.core import WorkloadMapper


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=60)
    parser.add_argument("--probes", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = spark_space()
    mapper = WorkloadMapper(space, n_probes=args.probes, threshold=0.75)
    cache = ParameterSelectionCache()

    # --- tune the first workload the normal (cold) way -------------------
    pr = get_workload("pagerank", "D1")
    pr_objective = WorkloadObjective(pr, space, rng=args.seed)
    print(f"Cold-tuning {pr.full_key} (pays full parameter selection)...")
    tuner = ROBOTune(selection_cache=cache, rng=args.seed)
    pr_result = tuner.tune(pr_objective, args.budget, rng=args.seed)
    print(f"  selection cost {pr_result.selection_cost_s / 60:.0f} min, "
          f"selected {pr_result.selected_parameters}")
    sig, probe_cost = mapper.signature(
        WorkloadObjective(pr, space, rng=args.seed + 1))
    mapper.register("pagerank", sig, pr_result.selected_parameters)

    # --- a new, similar workload arrives ----------------------------------
    cc = get_workload("connectedcomponents", "D1")
    cc_objective = WorkloadObjective(cc, space, rng=args.seed + 2)
    print(f"\nNew workload {cc.full_key}: probing with {args.probes} "
          "configurations...")
    mapping = mapper.map(WorkloadObjective(cc, space, rng=args.seed + 3))
    print(f"  probe cost {mapping.probe_cost_s / 60:.1f} min "
          f"(vs {pr_result.selection_cost_s / 60:.0f} min full selection)")

    if mapping.matched:
        print(f"  matched '{mapping.matched}' "
              f"(Spearman rho = {mapping.correlation:.2f}) — reusing its "
              "selected parameters, skipping selection")
        cache.put(cc.key, mapper.selected_for(mapping.matched))
    else:
        print(f"  no match (best rho = {mapping.correlation:.2f}) — "
              "falling back to full parameter selection")

    cc_result = tuner.tune(cc_objective, args.budget, rng=args.seed + 4)
    print(f"\n{cc.full_key}: selection cache hit = "
          f"{cc_result.selection_cache_hit}, "
          f"best = {cc_result.best_time_s:.1f}s, "
          f"search cost = {cc_result.search_cost_s / 60:.0f} min")


if __name__ == "__main__":
    main()
