#!/usr/bin/env python
"""Why is this configuration slow?  Bottleneck attribution on the simulator.

Runs a workload under the Spark default configuration and under a tuned
configuration found by ROBOTune, then uses
:class:`repro.sparksim.TraceAnalyzer` to attribute execution time to
resource components (input IO, compute, shuffle write/fetch, spill,
scheduling) and narrate what the tuning changed — the simulator-world
analogue of reading the Spark UI.

Run:
    python examples/diagnose_bottlenecks.py [--workload kmeans]
"""

import argparse

from repro import ROBOTune, SparkConf, SparkSimulator, WorkloadObjective, \
    get_workload, spark_space
from repro.sparksim import TraceAnalyzer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="kmeans")
    parser.add_argument("--dataset", default="D1")
    parser.add_argument("--budget", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    stages = workload.build_stages()
    sim = SparkSimulator()
    analyzer = TraceAnalyzer()

    print(f"Baseline: {workload.full_key} under Spark defaults "
          "(uncapped)...")
    baseline = sim.run(stages, SparkConf(), rng=args.seed)
    if baseline.ok:
        profile = analyzer.analyze(baseline)
        print(f"  {baseline.duration_s:.0f}s — {profile.describe()}")
    else:
        print(f"  FAILED ({baseline.status.value}): "
              f"{baseline.failure_reason}")

    print(f"\nTuning with ROBOTune (budget {args.budget})...")
    objective = WorkloadObjective(workload, space, rng=args.seed + 1)
    result = ROBOTune(rng=args.seed).tune(objective, args.budget,
                                          rng=args.seed)
    tuned = sim.run(stages, result.best_config, rng=args.seed)
    profile = analyzer.analyze(tuned)
    print(f"  {tuned.duration_s:.0f}s — {profile.describe()}")

    if baseline.ok:
        print("\nWhat changed:")
        print(f"  {analyzer.compare(baseline, tuned)}")
    else:
        print("\n(The default configuration failed outright, so there is "
              "no baseline profile to compare against — tuning took the "
              f"workload from '{baseline.status.value}' to "
              f"{tuned.duration_s:.0f}s.)")

    print("\nPer-stage breakdown of the tuned run:")
    for s in tuned.stages:
        print(f"  {s.name:28s} {s.duration_s:8.1f}s  tasks={s.tasks:4d} "
              f"waves={s.waves:3d}  gc={s.gc_factor:.2f}x "
              f"cache-hit={s.cache_hit_fraction:.0%}")


if __name__ == "__main__":
    main()
