#!/usr/bin/env python
"""Compare ROBOTune against BestConfig, Gunther and Random Search.

Reproduces a slice of the paper's Figures 3 and 4 on one workload: each
tuner gets the same budget; the report shows best-found execution time and
total search cost (the summed execution time of every configuration each
tuner ran), scaled to Random Search.

Run:
    python examples/compare_tuners.py [--workload pagerank] [--trials 2]
"""

import argparse

import numpy as np

from repro import (BestConfig, Gunther, ROBOTune, RandomSearch,
                   WorkloadObjective, get_workload, spark_space)
from repro.bench import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="pagerank")
    parser.add_argument("--dataset", default="D1")
    parser.add_argument("--budget", type=int, default=100)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = spark_space()
    tuners = {
        "ROBOTune": lambda seed: ROBOTune(rng=seed),
        "BestConfig": lambda seed: BestConfig(),
        "Gunther": lambda seed: Gunther(),
        "RandomSearch": lambda seed: RandomSearch(),
    }

    results: dict[str, dict[str, float]] = {}
    for name, make in tuners.items():
        bests, costs = [], []
        for trial in range(args.trials):
            seed = args.seed * 1000 + trial
            workload = get_workload(args.workload, args.dataset)
            objective = WorkloadObjective(workload, space, rng=seed + 1)
            result = make(seed).tune(objective, args.budget, rng=seed)
            bests.append(result.best_time_s)
            costs.append(result.search_cost_s)
        results[name] = {"best": float(np.mean(bests)),
                         "cost": float(np.mean(costs))}
        print(f"{name:12s} done: best={results[name]['best']:.1f}s "
              f"cost={results[name]['cost'] / 60:.0f}min")

    rs = results["RandomSearch"]
    rows = [(name,
             r["best"], r["best"] / rs["best"],
             r["cost"] / 60, r["cost"] / rs["cost"])
            for name, r in results.items()]
    print()
    print(format_table(
        ["Tuner", "best (s)", "best/RS", "cost (min)", "cost/RS"], rows,
        title=f"{args.workload}/{args.dataset}, budget {args.budget}, "
              f"{args.trials} trial(s) — lower is better"))


if __name__ == "__main__":
    main()
