#!/usr/bin/env python
"""Quickstart: tune a Spark workload with ROBOTune in ~30 lines.

Tunes PageRank on the 5-million-page dataset (Table 1, PR-D1) over the
44-parameter Spark 2.4 space, on the simulated 6-node cluster, with the
paper's evaluation protocol: a budget of 100 executions and a 480 s cap
per configuration.

Run:
    python examples/quickstart.py [--budget 100] [--seed 0]
"""

import argparse

from repro import ROBOTune, WorkloadObjective, get_workload, spark_space
from repro.space import ConfigurationEncoder


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="pagerank",
                        help="pagerank|kmeans|connectedcomponents|"
                             "logisticregression|terasort")
    parser.add_argument("--dataset", default="D1", help="D1|D2|D3")
    parser.add_argument("--budget", type=int, default=100,
                        help="evaluation budget (paper: 100)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    objective = WorkloadObjective(workload, space, rng=args.seed)

    print(f"Tuning {workload.full_key} "
          f"({workload.input_mb / 1024:.1f} GB input) "
          f"with a budget of {args.budget} executions...")
    tuner = ROBOTune(rng=args.seed)
    result = tuner.tune(objective, args.budget, rng=args.seed)

    print(f"\nSelected high-impact parameters "
          f"({len(result.selected_parameters)} of {space.dim}):")
    for name in result.selected_parameters:
        print(f"  - {name}")
    print(f"\nParameter-selection cost (one-time): "
          f"{result.selection_cost_s / 60:.1f} min")
    print(f"Search cost: {result.search_cost_s / 60:.1f} min "
          f"over {result.n_evaluations} executions")
    print(f"Best execution time: {result.best_time_s:.1f} s")

    print("\nBest configuration (spark-defaults.conf):")
    encoder = ConfigurationEncoder(space)
    selected = set(result.selected_parameters)
    for line in encoder.to_conf_file(result.best_config).splitlines():
        if line.split(" ", 1)[0] in selected:
            print(f"  {line}   # tuned")
    print("  ... (unselected parameters pinned to the best known values)")


if __name__ == "__main__":
    main()
