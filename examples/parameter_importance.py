#!/usr/bin/env python
"""Which Spark parameters actually matter for a workload?

Runs the paper's parameter-selection pipeline standalone (§3.3): execute
LHS samples of the full 44-parameter space on the simulated cluster, fit a
Random Forests model, and rank parameter groups by grouped
Mean-Decrease-in-Accuracy on the out-of-bag R² — collinear parameters
(executor cores+memory, speculation knobs, Kryo knobs, off-heap knobs) are
permuted jointly.

Run:
    python examples/parameter_importance.py [--workload terasort]
"""

import argparse

from repro import ParameterSelector, WorkloadObjective, get_workload, \
    spark_space
from repro.bench import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="terasort")
    parser.add_argument("--dataset", default="D1")
    parser.add_argument("--samples", type=int, default=100,
                        help="LHS samples to execute (paper: 100)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = spark_space()
    workload = get_workload(args.workload, args.dataset)
    objective = WorkloadObjective(workload, space, rng=args.seed)
    selector = ParameterSelector(n_samples=args.samples, rng=args.seed)

    print(f"Executing {args.samples} LHS samples of {workload.full_key} "
          f"on the simulated cluster...")
    evals = selector.collect(objective, space)
    ok = sum(e.ok for e in evals)
    print(f"  {ok}/{len(evals)} configurations succeeded "
          f"(failures are informative too)")
    result = selector.select(space, evals)

    rows = []
    for g in result.importances:
        selected = "selected" if g.group in result.selected_groups else ""
        members = ", ".join(space.names[c] for c in g.columns) \
            if len(g.columns) > 1 else ""
        rows.append((g.group, g.importance, g.std, selected, members))
    print()
    print(format_table(
        ["Parameter group", "MDA importance", "std", "", "joint members"],
        rows[:15],
        title=f"Top parameter groups for {workload.full_key} "
              f"(OOB R² = {result.oob_r2:.2f}, threshold = "
              f"{selector.threshold})", float_fmt="{:.3f}"))
    print(f"\nSelected for tuning: {list(result.selected)}")
    print(f"One-time selection cost: {result.cost_s / 60:.1f} simulated "
          "minutes")


if __name__ == "__main__":
    main()
